#include "net/network.hpp"

#include "obs/trace.hpp"
#include "topology/disjoint.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <unordered_set>
#include <utility>

namespace eqos::net {
namespace {

/// Is `v` ascending with no duplicates?  Debug-only precondition check for
/// redistribute (callers merge already-sorted chaining sets).
[[maybe_unused]] bool sorted_unique(const std::vector<ConnectionId>& v) {
  return std::is_sorted(v.begin(), v.end()) &&
         std::adjacent_find(v.begin(), v.end()) == v.end();
}

/// Metric-name suffix of a scheme ("net.drops.<scheme>" etc.).
const char* scheme_name(BackupScheme s) {
  switch (s) {
    case BackupScheme::kSingle: return "single";
    case BackupScheme::kDualDisjoint: return "dual";
    case BackupScheme::kSegment: return "segment";
  }
  return "unknown";
}

/// Locates the splice anchors of `patch` on `primary`: the unique positions
/// of the patch's endpoint nodes, in order.  False when either endpoint is
/// missing, ambiguous (a repeated node — possible after earlier segment
/// splices), or reversed: such a channel cannot be spliced in safely.
bool splice_points(const topology::Path& primary, const topology::Path& patch,
                   std::size_t& a, std::size_t& b) {
  std::size_t ca = 0;
  std::size_t cb = 0;
  for (std::size_t i = 0; i < primary.nodes.size(); ++i) {
    if (primary.nodes[i] == patch.nodes.front()) {
      a = i;
      ++ca;
    }
    if (primary.nodes[i] == patch.nodes.back()) {
      b = i;
      ++cb;
    }
  }
  return ca == 1 && cb == 1 && a < b;
}

/// Segment-establishment filter: interior nodes of `patch` must avoid
/// `primary` entirely, or the spliced path would visit a node twice (and
/// later splice anchors would become ambiguous).  Full-span backups are not
/// held to this — a full-span switchover replaces the primary wholesale, so
/// shared interior nodes are harmless there.
bool splice_compatible(const topology::Path& primary, const topology::Path& patch) {
  for (std::size_t i = 1; i + 1 < patch.nodes.size(); ++i)
    for (topology::NodeId n : primary.nodes)
      if (patch.nodes[i] == n) return false;
  return true;
}

/// Does the path visit every node at most once?  Activation-time guard for
/// spliced primaries (a full-span switchover result is the router's own
/// simple path and always passes).
bool nodes_unique(const topology::Path& p) {
  std::vector<topology::NodeId> nodes = p.nodes;
  std::sort(nodes.begin(), nodes.end());
  return std::adjacent_find(nodes.begin(), nodes.end()) == nodes.end();
}

}  // namespace

Network::Network(topology::Graph graph, NetworkConfig config)
    : graph_(std::move(graph)),
      config_(config),
      links_(graph_.num_links(), LinkState(config.link_capacity_kbps)),
      backups_(graph_.num_links(), config.backup_multiplexing),
      goal_(graph_),
      router_(graph_, links_, backups_, config.route_policy, &goal_),
      primaries_on_link_(graph_.num_links()),
      direct_union_scratch_(graph_.num_links()) {
  if (graph_.num_nodes() < 2)
    throw std::invalid_argument("network: topology needs at least two nodes");
  // Configuration validation: reject bad values here, naming the field, so
  // they cannot silently propagate (e.g. a negative detect time used to slip
  // through to sim::make_shard_plan, which quietly substituted lookahead 1.0).
  if (!(config_.link_capacity_kbps > 0.0))
    throw std::invalid_argument("NetworkConfig.link_capacity_kbps must be positive");
  if (config_.recovery_detect_time < 0.0)
    throw std::invalid_argument("NetworkConfig.recovery_detect_time must be non-negative");
  if (config_.recovery_xc_time_per_hop < 0.0)
    throw std::invalid_argument(
        "NetworkConfig.recovery_xc_time_per_hop must be non-negative");
  if (config_.recovery_setup_time_per_hop < 0.0)
    throw std::invalid_argument(
        "NetworkConfig.recovery_setup_time_per_hop must be non-negative");
  if (config_.segment_span_hops == 0)
    throw std::invalid_argument("NetworkConfig.segment_span_hops must be positive");
  if (config_.recovery_detect_min < 0.0)
    throw std::invalid_argument("NetworkConfig.recovery_detect_min must be non-negative");
  if (config_.recovery_detect_max < config_.recovery_detect_min)
    throw std::invalid_argument(
        "NetworkConfig.recovery_detect_max must be >= recovery_detect_min");
  if (!(config_.recovery_signal_loss_prob >= 0.0 &&
        config_.recovery_signal_loss_prob <= 1.0))
    throw std::invalid_argument(
        "NetworkConfig.recovery_signal_loss_prob must be in [0, 1]");
  if (!(config_.recovery_signal_timeout > 0.0))
    throw std::invalid_argument("NetworkConfig.recovery_signal_timeout must be positive");
  if (config_.recovery_signal_backoff < 1.0)
    throw std::invalid_argument("NetworkConfig.recovery_signal_backoff must be >= 1");
  if (!(config_.recovery_deadline > 0.0))
    throw std::invalid_argument("NetworkConfig.recovery_deadline must be positive");
  // Metric names are process-wide: every Network (e.g. a sweep's concurrent
  // instances) aggregates into the same registry entries.  Registration is
  // find-or-create, so repeated construction is cheap and idempotent.
  obs::MetricsRegistry& reg = obs::MetricsRegistry::global();
  obs_.arrivals_admitted = reg.counter("net.arrivals_admitted");
  obs_.arrivals_rejected = reg.counter("net.arrivals_rejected");
  obs_.terminations = reg.counter("net.terminations");
  obs_.retreats = reg.counter("net.retreats");
  obs_.redistributes = reg.counter("net.redistributes");
  obs_.backups_activated = reg.counter("net.backups_activated");
  obs_.backups_lost = reg.counter("net.backups_lost");
  obs_.reroutes = reg.counter("net.reroutes");
  obs_.drops = reg.counter("net.drops");
  obs_.link_failures = reg.counter("net.link_failures");
  obs_.link_repairs = reg.counter("net.link_repairs");
  obs_.active_connections = reg.gauge("net.active_connections");
  obs_.primary_hops = reg.histogram("net.primary_hops", {1, 2, 3, 4, 6, 8, 12, 16});
  obs_.redistribute_gainable =
      reg.histogram("net.redistribute_gainable", {0, 1, 2, 4, 8, 16, 32, 64});
  obs_.backup_set_survivals = reg.counter("net.backup_set_survivals");
  const std::string scheme = scheme_name(config_.backup_scheme);
  obs_.scheme_drops = reg.counter("net.drops." + scheme);
  obs_.scheme_activations = reg.counter("net.activations." + scheme);
  obs_.time_to_reroute =
      reg.histogram("net.time_to_reroute", {0.5, 1, 2, 4, 8, 16, 32});
  obs_.blackout_time =
      reg.histogram("net.blackout_time", {0.5, 1, 2, 4, 8, 16, 32});
}

void Network::set_risk_groups(
    const std::vector<std::vector<topology::LinkId>>& groups) {
  std::vector<util::DynamicBitset> built;
  built.reserve(groups.size());
  for (const auto& g : groups) {
    util::DynamicBitset bits(graph_.num_links());
    for (topology::LinkId l : g) {
      if (l >= graph_.num_links())
        throw std::invalid_argument("network: risk group references unknown link");
      bits.set(l);
    }
    built.push_back(std::move(bits));
  }
  risk_groups_ = std::move(built);
}

void Network::set_partition(const topology::Partition& partition) {
  link_shard_.clear();
  cross_shard_handoffs_ = 0;
  if (partition.shards <= 1 || partition.shard_of.size() != graph_.num_nodes())
    return;
  link_shard_.resize(graph_.num_links());
  for (std::size_t l = 0; l < graph_.num_links(); ++l) {
    // A link belongs to the shard of its first endpoint (the same owner
    // rule the simulator's event locus uses).
    link_shard_[l] = partition.shard_of[graph_.link(static_cast<topology::LinkId>(l)).a];
  }
}

std::uint32_t Network::link_shard(topology::LinkId link) const {
  if (link_shard_.empty()) return 0;
  return link_shard_.at(link);
}

util::DynamicBitset Network::srlg_expand(const util::DynamicBitset& links) const {
  util::DynamicBitset out = links;
  for (const util::DynamicBitset& g : risk_groups_)
    if (g.intersects(links)) out |= g;
  return out;
}

bool Network::fully_protected(const DrConnection& c) const {
  switch (config_.backup_scheme) {
    case BackupScheme::kSingle:
      return !c.backups.empty();
    case BackupScheme::kDualDisjoint:
      return c.backups.size() >= 2;
    case BackupScheme::kSegment: {
      util::DynamicBitset covered(graph_.num_links());
      for (const BackupChannel& ch : c.backups) covered |= ch.trigger_links;
      for (topology::LinkId l : c.primary.links)
        if (!covered.test(l)) return false;
      return true;
    }
  }
  return false;
}

topology::Path Network::splice_primary(const topology::Path& primary,
                                       const topology::Path& patch) {
  std::size_t a = 0;
  std::size_t b = 0;
  const bool ok = splice_points(primary, patch, a, b);
  assert(ok);
  (void)ok;
  topology::Path out;
  out.nodes.reserve(a + patch.nodes.size() + (primary.nodes.size() - b - 1));
  out.nodes.insert(out.nodes.end(), primary.nodes.begin(),
                   primary.nodes.begin() + static_cast<std::ptrdiff_t>(a));
  out.nodes.insert(out.nodes.end(), patch.nodes.begin(), patch.nodes.end());
  out.nodes.insert(out.nodes.end(),
                   primary.nodes.begin() + static_cast<std::ptrdiff_t>(b) + 1,
                   primary.nodes.end());
  out.links.reserve(a + patch.links.size() + (primary.links.size() - b));
  out.links.insert(out.links.end(), primary.links.begin(),
                   primary.links.begin() + static_cast<std::ptrdiff_t>(a));
  out.links.insert(out.links.end(), patch.links.begin(), patch.links.end());
  out.links.insert(out.links.end(),
                   primary.links.begin() + static_cast<std::ptrdiff_t>(b),
                   primary.links.end());
  return out;
}

const LinkState& Network::link_state(topology::LinkId l) const {
  if (l >= links_.size()) throw std::invalid_argument("network: unknown link");
  return links_[l];
}

const DrConnection& Network::connection(ConnectionId id) const {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end())
    throw std::invalid_argument("network: unknown connection " + std::to_string(id));
  return *it->second.ptr;
}

DrConnection& Network::mutable_connection(ConnectionId id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end())
    throw std::invalid_argument("network: unknown connection " + std::to_string(id));
  return *it->second.ptr;
}

bool Network::is_active(ConnectionId id) const { return slot_of_.count(id) != 0; }

util::DynamicBitset Network::path_bits(const topology::Path& p) const {
  return p.link_set(graph_.num_links());
}

// ---- Chaining classification ------------------------------------------------

const Network::ChainSets& Network::classify_against(
    const std::vector<topology::LinkId>& event_path_links,
    const util::DynamicBitset& event_links, ConnectionId exclude) const {
  ChainSets& sets = chain_scratch_;
  sets.direct.clear();
  sets.indirect.clear();

  // Direct members come straight from the per-link registry: only the
  // event's own links are inspected, not the whole active set.  A channel
  // traversing k event links appears k times; sort + unique restores the
  // old full-scan result (sorted ascending, each id once).  The registry's
  // slot column gives each record without a hash probe, so the direct
  // union accumulates during the same walk (re-ORing a duplicate is a
  // no-op, and the excluded id is filtered before it can contribute).
  util::DynamicBitset& direct_union = direct_union_scratch_;
  direct_union.clear();
  for (topology::LinkId l : event_path_links) {
    const LinkRegistry& reg = primaries_on_link_[l];
    for (std::size_t k = 0; k < reg.ids.size(); ++k) {
      if (reg.ids[k] == exclude) continue;
      sets.direct.push_back(reg.ids[k]);
      direct_union |= arena_[reg.slots[k]].primary_links;
    }
  }
  std::sort(sets.direct.begin(), sets.direct.end());
  sets.direct.erase(std::unique(sets.direct.begin(), sets.direct.end()),
                    sets.direct.end());

  // Indirect members (share a link with a direct member but not the event
  // path) still need one pass over the active set — they can sit anywhere.
  // The dense pointer mirror avoids a hash probe per active id, and testing
  // the (superset) direct union first rejects unrelated channels with a
  // single bitset intersect; the event-link test only runs for candidates.
  // Membership is unchanged: indirect = intersects(union) && !intersects(event).
  const std::size_t n_active = active_ids_.size();
  for (std::size_t i = 0; i < n_active; ++i) {
    const ConnectionId id = active_ids_[i];
    if (id == exclude) continue;
    const DrConnection& c = *active_conns_[i];
    // A recovering victim holds no primary resources: its (stale) link set
    // must neither chain nor gain.  Its registry entries are gone, so the
    // direct walk above already never sees it.
    if (c.recovering) continue;
    if (!c.primary_links.intersects(direct_union)) continue;
    if (c.primary_links.intersects(event_links)) continue;  // already direct
    sets.indirect.push_back(id);
  }
  std::sort(sets.indirect.begin(), sets.indirect.end());
  return sets;
}

// ---- Elastic grant management -----------------------------------------------

void Network::retreat(DrConnection& c) {
  if (c.extra_quanta == 0) return;
  const double extra = c.extra_kbps();
  for (topology::LinkId l : c.primary.links) links_[l].revoke_elastic(extra);
  stats_.quanta_adjustments += c.extra_quanta;
  obs_.retreats.inc();
  obs::trace_event(obs::TraceKind::kRetreat, static_cast<std::uint32_t>(c.id), 0,
                   static_cast<double>(c.extra_quanta));
  c.extra_quanta = 0;
  soa_extra_quanta_[c.arena_slot] = 0;
}

bool Network::can_gain(const DrConnection& c) const {
  if (c.extra_quanta >= c.qos.max_extra_quanta()) return false;
  for (topology::LinkId l : c.primary.links)
    if (links_[l].elastic_spare() < c.qos.increment_kbps - LinkState::kEpsilon)
      return false;
  return true;
}

void Network::grant_one(DrConnection& c) {
  for (topology::LinkId l : c.primary.links)
    links_[l].grant_elastic(c.qos.increment_kbps);
  ++c.extra_quanta;
  soa_extra_quanta_[c.arena_slot] = static_cast<std::uint32_t>(c.extra_quanta);
  ++stats_.quanta_adjustments;
}

void Network::redistribute(const std::vector<ConnectionId>& candidates) {
  assert(sorted_unique(candidates));
  // Spare only shrinks while increments are handed out, so a candidate that
  // cannot gain *now* can never gain later in this redistribution.  Seeding
  // with the currently-gainable subset is therefore behavior-identical to
  // queueing everyone — and when the network is saturated (the common case
  // during churn) the subset is empty and we return before any heap or
  // ordering work.
  auto& gainable = gainable_scratch_;
  gainable.clear();
  for (ConnectionId id : candidates) {
    const auto it = slot_of_.find(id);
    if (it == slot_of_.end()) continue;  // dropped/terminated mid-event
    const std::uint32_t s = it->second.slot;
    // Quota prefilter on the flat SoA rows: under saturated churn most
    // candidates sit at their maximum, so the record (and its path) is
    // never touched.  Semantics identical to can_gain().  Once the record
    // must be pulled in anyway for its link list, the increment comes from
    // it too — same double the audit proves equal to soa_increment_[s],
    // without streaming a second scattered array.
    if (soa_extra_quanta_[s] >= soa_max_extra_[s]) continue;
    const DrConnection& c = *it->second.ptr;
    // A recovering victim has no committed primary to grant onto.
    if (c.recovering) continue;
    bool has_room = true;
    for (topology::LinkId l : c.primary.links) {
      if (links_[l].elastic_spare() < c.qos.increment_kbps - LinkState::kEpsilon) {
        has_room = false;
        break;
      }
    }
    if (has_room) gainable.emplace_back(id, s);
  }
  if (gainable.empty()) return;
  obs_.redistributes.inc();
  obs_.redistribute_gainable.observe(static_cast<double>(gainable.size()));
  obs::trace_event(obs::TraceKind::kRedistribute,
                   static_cast<std::uint32_t>(candidates.size()),
                   static_cast<std::uint32_t>(gainable.size()));

  if (config_.adaptation == AdaptationScheme::kMaxUtility) {
    // Highest utility monopolizes the spare before the next channel gets any.
    std::sort(gainable.begin(), gainable.end(),
              [&](const std::pair<ConnectionId, std::uint32_t>& a,
                  const std::pair<ConnectionId, std::uint32_t>& b) {
                const double ua = soa_utility_[a.second];
                const double ub = soa_utility_[b.second];
                return ua != ub ? ua > ub : a.first < b.first;
              });
    for (const auto& [id, s] : gainable) {
      DrConnection& c = arena_[s];
      while (can_gain(c)) grant_one(c);
    }
    return;
  }

  // Coefficient scheme: repeatedly give one increment to the candidate with
  // the lowest (level+1)/utility, ties broken by id.  A popped candidate that
  // can no longer gain is dropped permanently (see above); otherwise it is
  // granted one increment and re-queued with its new level.  Each candidate
  // therefore enters the heap at most (increments gained + 1) times.  The
  // heap lives in a reused member vector driven by push_heap/pop_heap —
  // exactly what std::priority_queue is specified to do, so pop order (and
  // every grant) is unchanged; the comparator's total order makes that order
  // independent of insertion sequence anyway.
  auto& heap = heap_scratch_;
  heap.clear();
  // Min-heap on (coef, id) — the slot rides along without affecting order,
  // so every pop (and therefore every grant) matches the old
  // pair<double, ConnectionId> heap exactly.
  const auto cmp = [](const GainCandidate& a, const GainCandidate& b) {
    return a.coef != b.coef ? a.coef > b.coef : a.id > b.id;
  };
  for (const auto& [id, s] : gainable) {
    heap.push_back(GainCandidate{
        static_cast<double>(soa_extra_quanta_[s] + 1) / soa_utility_[s], id, s});
  }
  std::make_heap(heap.begin(), heap.end(), cmp);
  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), cmp);
    const GainCandidate top = heap.back();
    heap.pop_back();
    DrConnection& c = arena_[top.slot];
    if (!can_gain(c)) continue;
    grant_one(c);
    heap.push_back(GainCandidate{
        static_cast<double>(c.extra_quanta + 1) / c.qos.utility, top.id, top.slot});
    std::push_heap(heap.begin(), heap.end(), cmp);
  }
}

// ---- Ledger plumbing ----------------------------------------------------------

void Network::commit_primary_min(const DrConnection& c) {
  for (topology::LinkId l : c.primary.links) links_[l].commit_min(c.qos.bmin_kbps);
}

void Network::release_primary_min(const DrConnection& c) {
  for (topology::LinkId l : c.primary.links) links_[l].release_min(c.qos.bmin_kbps);
}

void Network::register_primary(DrConnection& c) {
  if (!link_shard_.empty()) {
    // Each shard change along the committed primary is a route handoff
    // between shard-local ledgers (diagnostic only; see set_partition).
    for (std::size_t i = 1; i < c.primary.links.size(); ++i) {
      if (link_shard_[c.primary.links[i]] != link_shard_[c.primary.links[i - 1]])
        ++cross_shard_handoffs_;
    }
  }
  c.registry_slots.resize(c.primary.links.size());
  for (std::size_t i = 0; i < c.primary.links.size(); ++i) {
    LinkRegistry& reg = primaries_on_link_[c.primary.links[i]];
    c.registry_slots[i] = static_cast<std::uint32_t>(reg.ids.size());
    reg.ids.push_back(c.id);
    reg.slots.push_back(c.arena_slot);
  }
}

void Network::unregister_primary(const DrConnection& c) {
  // Swap-erase via the cached slot instead of a linear scan per link.
  // Registry order is irrelevant to behavior: every consumer sorts what it
  // gathers (classify_against, fail_link's victim lists), so the swap does
  // not perturb results.
  assert(c.registry_slots.size() == c.primary.links.size());
  for (std::size_t i = 0; i < c.primary.links.size(); ++i) {
    const topology::LinkId l = c.primary.links[i];
    LinkRegistry& reg = primaries_on_link_[l];
    const std::uint32_t slot = c.registry_slots[i];
    assert(slot < reg.ids.size() && reg.ids[slot] == c.id);
    const ConnectionId moved = reg.ids.back();
    reg.ids[slot] = moved;
    reg.slots[slot] = reg.slots.back();
    reg.ids.pop_back();
    reg.slots.pop_back();
    if (moved == c.id) continue;  // c sat in the last slot of this list
    // Re-point the moved connection's cached slot for this link — via its
    // arena slot, no hash probe.  A primary path is simple, so the link
    // appears exactly once in its link list.
    DrConnection& m = arena_[reg.slots[slot]];
    for (std::size_t j = 0; j < m.primary.links.size(); ++j) {
      if (m.primary.links[j] == l) {
        m.registry_slots[j] = slot;
        break;
      }
    }
  }
}

void Network::sync_backup_reservation(topology::LinkId l) {
  links_[l].set_backup_reserved(backups_.reservation(l));
}

void Network::commit_backup(DrConnection& c, topology::Path path,
                            util::DynamicBitset trigger) {
  BackupChannel ch;
  ch.links = path_bits(path);
  std::size_t overlap = 0;
  for (topology::LinkId l : path.links)
    if (c.primary_links.test(l)) ++overlap;
  ch.overlap_links = overlap;
  for (topology::LinkId l : path.links) {
    backups_.add(l, c.id, c.qos.bmin_kbps, trigger);
    sync_backup_reservation(l);
  }
  ch.path = std::move(path);
  ch.trigger_links = std::move(trigger);
  c.backups.push_back(std::move(ch));
  c.backup_status = BackupStatus::kProtected;
}

void Network::remove_backup_channel(DrConnection& c, std::size_t idx) {
  assert(idx < c.backups.size());
  for (topology::LinkId l : c.backups[idx].path.links) {
    backups_.remove(l, c.id);
    sync_backup_reservation(l);
  }
  c.backups.erase(c.backups.begin() + static_cast<std::ptrdiff_t>(idx));
  if (c.backups.empty()) c.backup_status = BackupStatus::kUnprotected;
}

void Network::remove_backup(DrConnection& c) {
  while (!c.backups.empty()) remove_backup_channel(c, c.backups.size() - 1);
  c.siblings_lost = 0;  // the set these losses were charged against is gone
}

void Network::retrigger_backup_channel(DrConnection& c, std::size_t idx,
                                       util::DynamicBitset trigger) {
  BackupChannel& ch = c.backups[idx];
  for (topology::LinkId l : ch.path.links) {
    backups_.remove(l, c.id);
    backups_.add(l, c.id, c.qos.bmin_kbps, trigger);
    sync_backup_reservation(l);
  }
  std::size_t overlap = 0;
  for (topology::LinkId l : ch.path.links)
    if (c.primary_links.test(l)) ++overlap;
  ch.overlap_links = overlap;
  ch.trigger_links = std::move(trigger);
}

std::optional<topology::Path> Network::find_backup_channel(
    topology::NodeId src, topology::NodeId dst, double bmin,
    const util::DynamicBitset& trigger, const util::DynamicBitset& primary_bits,
    const util::DynamicBitset* sibling_links, bool require_disjoint) const {
  Router::BackupQuery q;
  q.src = src;
  q.dst = dst;
  q.bmin = bmin;
  q.trigger = &trigger;
  q.primary = &primary_bits;
  q.require_disjoint = require_disjoint;
  const bool srlg_on =
      config_.srlg_policy != SrlgPolicy::kIgnore && !risk_groups_.empty();
  util::DynamicBitset forbidden(graph_.num_links());
  bool use_forbidden = false;
  if (sibling_links) {
    forbidden |= *sibling_links;
    use_forbidden = true;
  }
  util::DynamicBitset soft;
  if (srlg_on) {
    if (config_.srlg_policy == SrlgPolicy::kAvoid) {
      // Soft worst-case awareness: minimize overlap with every link that
      // shares fate with the primary, not only the primary itself.
      soft = srlg_expand(primary_bits);
      q.soft_avoid = &soft;
    } else {
      // Hard: a channel sharing an SRLG with what it protects (or with a
      // sibling it is supposed to outlive) is inadmissible.
      util::DynamicBitset risky = primary_bits;
      if (sibling_links) risky |= *sibling_links;
      forbidden |= srlg_expand(risky);
      use_forbidden = true;
    }
  }
  if (use_forbidden) q.forbidden = &forbidden;
  return router_.find_backup(q);
}

bool Network::establish_backup(DrConnection& c) {
  // A recovering victim's primary is gone; fresh channels would defend a
  // path that no longer exists.  Its set is replenished after the recovery
  // commits (complete_recovery) or re-homes it (rescue).
  if (c.recovering) return false;
  bool added = false;
  switch (config_.backup_scheme) {
    case BackupScheme::kSingle: {
      if (!c.backups.empty()) break;
      auto path = find_backup_channel(c.src, c.dst, c.qos.bmin_kbps,
                                      c.primary_links, c.primary_links, nullptr,
                                      config_.require_full_disjoint);
      if (!path) break;
      commit_backup(c, std::move(*path), c.primary_links);
      added = true;
      break;
    }
    case BackupScheme::kDualDisjoint: {
      while (c.backups.size() < 2) {
        util::DynamicBitset siblings(graph_.num_links());
        for (const BackupChannel& ch : c.backups) siblings |= ch.links;
        const bool first = c.backups.empty();
        // The first channel follows the paper's rule (maximal disjointness
        // allowed); the second must be fully disjoint from the primary and
        // link-free of its sibling so one failure cannot take both.
        auto path = find_backup_channel(c.src, c.dst, c.qos.bmin_kbps,
                                        c.primary_links, c.primary_links,
                                        first ? nullptr : &siblings,
                                        first ? config_.require_full_disjoint : true);
        if (!path) break;
        commit_backup(c, std::move(*path), c.primary_links);
        added = true;
      }
      break;
    }
    case BackupScheme::kSegment:
      added = establish_segment_backups(c);
      break;
  }
  // A freshly completed set owes nothing to history: survival credit for
  // earlier sibling losses applies only while the set stays depleted.
  if (fully_protected(c)) c.siblings_lost = 0;
  return added;
}

bool Network::establish_segment_backups(DrConnection& c) {
  const std::size_t span = std::max<std::size_t>(1, config_.segment_span_hops);
  util::DynamicBitset covered(graph_.num_links());
  util::DynamicBitset siblings(graph_.num_links());
  for (const BackupChannel& ch : c.backups) {
    covered |= ch.trigger_links;
    siblings |= ch.links;
  }
  bool added = false;
  const auto& nodes = c.primary.nodes;
  const auto& plinks = c.primary.links;
  for (std::size_t a = 0; a < plinks.size(); a += span) {
    const std::size_t b = std::min(a + span, plinks.size());
    bool uncovered = false;
    for (std::size_t i = a; i < b; ++i)
      if (!covered.test(plinks[i])) {
        uncovered = true;
        break;
      }
    if (!uncovered) continue;
    util::DynamicBitset trigger(graph_.num_links());
    for (std::size_t i = a; i < b; ++i) trigger.set(plinks[i]);
    auto path = find_backup_channel(nodes[a], nodes[b], c.qos.bmin_kbps, trigger,
                                    c.primary_links, &siblings,
                                    /*require_disjoint=*/true);
    if (!path) continue;
    if (!splice_compatible(c.primary, *path)) continue;
    commit_backup(c, std::move(*path), std::move(trigger));
    siblings |= c.backups.back().links;
    for (std::size_t i = a; i < b; ++i) covered.set(plinks[i]);
    added = true;
  }
  return added;
}

bool Network::segment_cover_possible(const topology::Path& primary,
                                     const util::DynamicBitset& primary_bits,
                                     double bmin) const {
  const std::size_t span = std::max<std::size_t>(1, config_.segment_span_hops);
  util::DynamicBitset no_siblings(graph_.num_links());
  for (std::size_t a = 0; a < primary.links.size(); a += span) {
    const std::size_t b = std::min(a + span, primary.links.size());
    util::DynamicBitset trigger(graph_.num_links());
    for (std::size_t i = a; i < b; ++i) trigger.set(primary.links[i]);
    auto path = find_backup_channel(primary.nodes[a], primary.nodes[b], bmin,
                                    trigger, primary_bits, &no_siblings,
                                    /*require_disjoint=*/true);
    if (path && splice_compatible(primary, *path)) return true;
  }
  return false;
}

DrConnection& Network::arena_insert(DrConnection&& c) {
  std::uint32_t slot;
  if (free_slots_.empty()) {
    slot = static_cast<std::uint32_t>(arena_.size());
    arena_.push_back(std::move(c));
    soa_extra_quanta_.push_back(0);
    soa_max_extra_.push_back(0);
    soa_increment_.push_back(0.0);
    soa_utility_.push_back(0.0);
  } else {
    slot = free_slots_.back();
    free_slots_.pop_back();
    arena_[slot] = std::move(c);
  }
  DrConnection& conn = arena_[slot];
  conn.arena_slot = slot;
  conn.active_pos = active_ids_.size();
  slot_of_.emplace(conn.id, ArenaRef{slot, &conn});
  active_ids_.push_back(conn.id);
  active_slots_.push_back(slot);
  active_conns_.push_back(&conn);
  soa_extra_quanta_[slot] = static_cast<std::uint32_t>(conn.extra_quanta);
  soa_max_extra_[slot] = static_cast<std::uint32_t>(conn.qos.max_extra_quanta());
  soa_increment_[slot] = conn.qos.increment_kbps;
  soa_utility_[slot] = conn.qos.utility;
  return conn;
}

void Network::drop_active(ConnectionId id) {
  const auto it = slot_of_.find(id);
  const std::uint32_t slot = it->second.slot;
  const std::size_t idx = arena_[slot].active_pos;
  const std::uint32_t moved_slot = active_slots_.back();
  active_ids_[idx] = active_ids_.back();
  active_slots_[idx] = moved_slot;
  active_conns_[idx] = active_conns_.back();
  // Fix the moved record's position (a harmless self-assignment when the
  // dropped record was the last one).
  arena_[moved_slot].active_pos = idx;
  active_ids_.pop_back();
  active_slots_.pop_back();
  active_conns_.pop_back();
  slot_of_.erase(it);
  // Blank the record so freed slots hold no stale paths/backups (and the
  // audit can assert id == 0 for every free slot), then recycle the slot.
  arena_[slot] = DrConnection{};
  free_slots_.push_back(slot);
}

Network::RescueOutcome Network::rescue(DrConnection& c) {
  auto primary = router_.find_primary(c.src, c.dst, c.qos.bmin_kbps);
  if (!primary) return RescueOutcome::kFailed;
  c.primary = std::move(*primary);
  c.primary_links = path_bits(c.primary);
  for (topology::LinkId l : c.primary.links) links_[l].commit_min(c.qos.bmin_kbps);
  register_primary(c);
  ++c.rescues;
  return establish_backup(c) ? RescueOutcome::kPair : RescueOutcome::kDegraded;
}

// ---- Arrival --------------------------------------------------------------------

ArrivalOutcome Network::request_connection(topology::NodeId src, topology::NodeId dst,
                                           const ElasticQosSpec& qos) {
  qos.validate();
  if (src == dst) throw std::invalid_argument("network: src == dst");
  if (src >= graph_.num_nodes() || dst >= graph_.num_nodes())
    throw std::invalid_argument("network: unknown endpoint");

  ++stats_.requests;
  ArrivalOutcome outcome;
  outcome.existing_before = active_ids_.size();

  auto primary = router_.find_primary(src, dst, qos.bmin_kbps);
  if (!primary) {
    ++stats_.rejected_no_primary;
    outcome.reject_reason = RejectReason::kNoPrimaryRoute;
    obs_.arrivals_rejected.inc();
    obs::trace_event(obs::TraceKind::kArrivalRejected, src, dst,
                     static_cast<double>(static_cast<int>(outcome.reject_reason)));
    return outcome;
  }
  util::DynamicBitset new_bits = path_bits(*primary);

  // Tentatively commit the primary minimums so the backup search sees the
  // post-admission ledger (elastic grants are irrelevant to admission).
  for (topology::LinkId l : primary->links) links_[l].commit_min(qos.bmin_kbps);

  // First-channel search.  kSingle/kDualDisjoint look for a full-span
  // backup exactly as the paper prescribes; kSegment probes (query-only)
  // whether at least one segment detour exists — its channels are committed
  // after registration, when the connection record carrying them exists.
  std::optional<topology::Path> backup;
  bool backup_possible = false;
  if (config_.backup_scheme == BackupScheme::kSegment) {
    backup_possible = segment_cover_possible(*primary, new_bits, qos.bmin_kbps);
  } else {
    backup = find_backup_channel(src, dst, qos.bmin_kbps, new_bits, new_bits,
                                 nullptr, config_.require_full_disjoint);
    backup_possible = backup.has_value();
  }
  if (!backup_possible && config_.require_backup) {
    for (topology::LinkId l : primary->links) links_[l].release_min(qos.bmin_kbps);
    // Sequential establishment failed; optionally re-plan primary and
    // backup jointly (trap topologies).  The admissibility filter is the
    // primary test for both legs — conservative for the backup leg, whose
    // multiplexed incremental need never exceeds bmin.  (Full-span schemes
    // only: a segment cover has no single pair to re-plan.)
    if (config_.joint_disjoint_fallback &&
        config_.backup_scheme != BackupScheme::kSegment) {
      const topology::LinkFilter admissible = [&](topology::LinkId l) {
        return links_[l].admits_primary(qos.bmin_kbps);
      };
      if (auto pair =
              topology::shortest_disjoint_pair(graph_, src, dst, admissible)) {
        primary = std::move(pair->first);
        backup = std::move(pair->second);
        new_bits = path_bits(*primary);
        for (topology::LinkId l : primary->links) links_[l].commit_min(qos.bmin_kbps);
        // Fall through to normal establishment with the new pair.
      }
    }
    if (!backup) {
      ++stats_.rejected_no_backup;
      outcome.reject_reason = RejectReason::kNoBackupRoute;
      obs_.arrivals_rejected.inc();
      obs::trace_event(obs::TraceKind::kArrivalRejected, src, dst,
                       static_cast<double>(static_cast<int>(outcome.reject_reason)));
      return outcome;
    }
  }

  // Classify existing channels and snapshot their elastic state before the
  // retreat (the paper's S_i -> S_0 -> S_j happens atomically at event time).
  // The newcomer is not yet registered, so no exclusion is needed; the
  // returned sets stay valid through this event (no nested classify).
  const ChainSets& chain = classify_against(primary->links, new_bits, /*exclude=*/0);
  std::unordered_map<ConnectionId, std::size_t> before;
  before.reserve(chain.direct.size() + chain.indirect.size());
  for (ConnectionId id : chain.direct) before[id] = conn_at(id).extra_quanta;
  for (ConnectionId id : chain.indirect) before[id] = conn_at(id).extra_quanta;

  for (ConnectionId id : chain.direct) retreat(mutable_connection(id));

  // Register the connection.
  DrConnection c;
  c.id = next_id_++;
  c.src = src;
  c.dst = dst;
  c.qos = qos;
  c.primary = std::move(*primary);
  c.primary_links = new_bits;
  const ConnectionId id = c.id;
  DrConnection& conn = arena_insert(std::move(c));
  register_primary(conn);

  if (backup) commit_backup(conn, std::move(*backup), conn.primary_links);
  // Multi-channel schemes top up the rest of the set (second disjoint
  // channel / segment cover) now that the record exists.
  if (config_.backup_scheme != BackupScheme::kSingle) establish_backup(conn);
  if (conn.has_backup()) {
    outcome.backup_established = true;
    outcome.backup_overlap_links = conn.backup_overlap_links();
  }

  // Redistribute spare capacity among everyone the event touched, the
  // newcomer included.  direct and indirect are sorted and disjoint, so a
  // set_union merge yields the sorted-unique list redistribute expects; the
  // newcomer's id is the largest ever issued, so appending keeps it sorted.
  merge_scratch_.clear();
  std::set_union(chain.direct.begin(), chain.direct.end(), chain.indirect.begin(),
                 chain.indirect.end(), std::back_inserter(merge_scratch_));
  merge_scratch_.push_back(id);
  redistribute(merge_scratch_);

  outcome.accepted = true;
  outcome.id = id;
  outcome.initial_quanta = conn.extra_quanta;
  obs_.arrivals_admitted.inc();
  obs_.active_connections.add(1);
  obs_.primary_hops.observe(static_cast<double>(conn.primary.hops()));
  obs::trace_event(obs::TraceKind::kArrivalAdmitted, static_cast<std::uint32_t>(id),
                   static_cast<std::uint32_t>(conn.primary.hops()),
                   static_cast<double>(conn.extra_quanta));
  outcome.changes.reserve(chain.direct.size() + chain.indirect.size());
  for (ConnectionId cid : chain.direct)
    outcome.changes.push_back(StateChange{cid, Chaining::kDirect, before[cid],
                                          conn_at(cid).extra_quanta});
  for (ConnectionId cid : chain.indirect)
    outcome.changes.push_back(StateChange{cid, Chaining::kIndirect, before[cid],
                                          conn_at(cid).extra_quanta});
  ++stats_.accepted;
  return outcome;
}

// ---- Termination ------------------------------------------------------------------

TerminationReport Network::terminate_connection(ConnectionId id) {
  DrConnection& c = mutable_connection(id);
  TerminationReport report;
  report.id = id;

  if (c.recovering) {
    // A recovering victim holds no primary resources (released at
    // severance), so departure frees only its remaining backup
    // reservations; nothing can gain.  The plane's pending events for this
    // id lazily cancel through is_recovering().
    remove_backup(c);
    drop_active(id);
    report.existing_after = active_ids_.size();
    ++stats_.terminated;
    obs_.terminations.inc();
    obs_.active_connections.sub(1);
    obs::trace_event(obs::TraceKind::kTermination, static_cast<std::uint32_t>(id),
                     static_cast<std::uint32_t>(report.existing_after));
    return report;
  }

  // Only channels sharing a link with the departing primary can gain
  // (Section 3.2's T transitions).
  const ChainSets& chain = classify_against(c.primary.links, c.primary_links,
                                            /*exclude=*/id);
  std::unordered_map<ConnectionId, std::size_t> before;
  before.reserve(chain.direct.size());
  for (ConnectionId cid : chain.direct) before[cid] = conn_at(cid).extra_quanta;

  retreat(c);
  release_primary_min(c);
  unregister_primary(c);
  remove_backup(c);
  drop_active(id);

  redistribute(chain.direct);

  report.existing_after = active_ids_.size();
  report.changes.reserve(chain.direct.size());
  for (ConnectionId cid : chain.direct)
    report.changes.push_back(StateChange{cid, Chaining::kDirect, before[cid],
                                         conn_at(cid).extra_quanta});
  ++stats_.terminated;
  obs_.terminations.inc();
  obs_.active_connections.sub(1);
  obs::trace_event(obs::TraceKind::kTermination, static_cast<std::uint32_t>(id),
                   static_cast<std::uint32_t>(report.existing_after));
  return report;
}

// ---- Failure / repair ----------------------------------------------------------------

FailureReport Network::fail_link(topology::LinkId link) {
  if (link >= links_.size()) throw std::invalid_argument("network: unknown link");
  FailureReport report;
  report.link = link;
  report.existing_before = active_ids_.size();
  if (links_[link].failed()) return report;  // idempotent
  links_[link].set_failed(true);
  goal_.set_link_usable(link, false);
  ++stats_.failures_injected;
  obs_.link_failures.inc();
  obs::trace_event(obs::TraceKind::kFailLink, link,
                   static_cast<std::uint32_t>(primaries_on_link_[link].ids.size()));

  // Victims, deterministic order — read off the per-link registries instead
  // of scanning every active connection.  A connection hit on both channels
  // counts only as a primary victim (the registry difference reproduces the
  // old scan's else-if).
  std::vector<ConnectionId> primary_victims = primaries_on_link_[link].ids;
  std::sort(primary_victims.begin(), primary_victims.end());
  std::vector<ConnectionId> backups_here = backups_.backups_on_link(link);
  std::sort(backups_here.begin(), backups_here.end());
  std::vector<ConnectionId> backup_victims;
  std::set_difference(backups_here.begin(), backups_here.end(),
                      primary_victims.begin(), primary_victims.end(),
                      std::back_inserter(backup_victims));
  report.primaries_hit = primary_victims.size();

  util::DynamicBitset activated_bits(graph_.num_links());
  util::DynamicBitset freed_bits(graph_.num_links());
  std::vector<ConnectionId> activated;
  // Victims whose backup could not seamlessly take over; resolved after the
  // switchover sweep per the configured second-failure policy.
  struct Stranded {
    ConnectionId id;
    bool double_hit;   ///< backup shared the failed link
    bool was_active;   ///< the hit path was an activated former backup
  };
  std::vector<Stranded> stranded;

  for (ConnectionId id : primary_victims) {
    DrConnection& c = mutable_connection(id);
    if (config_.recovery_protocol) {
      // Event-driven recovery: release the severed primary's resources now
      // (the service *is* interrupted), but defer the switchover to the
      // sim-layer control plane — the victim parks in kRecovering and the
      // plane drives detection, signaling, and deadline enforcement as
      // scheduled events that call back into claim/complete/drop.
      retreat(c);
      release_primary_min(c);
      unregister_primary(c);
      c.registry_slots.clear();
      freed_bits |= c.primary_links;
      bool double_hit = false;
      std::size_t j = 0;
      while (j < c.backups.size()) {
        if (!c.backups[j].links.test(link)) {
          ++j;
          continue;
        }
        // A channel crossing the failed link is dead.  When it also covered
        // the link, only maximal disjointness was possible there (bridge or
        // SRLG overlap): the classic double hit.
        if (c.backups[j].trigger_links.test(link)) {
          ++report.backups_died_with_primary;
          double_hit = true;
        } else {
          ++report.backups_lost;
          obs_.backups_lost.inc();
        }
        remove_backup_channel(c, j);
        ++c.siblings_lost;
      }
      c.recovering = true;
      c.recovering_link = link;
      // Every severed victim suffers a disruption whatever its eventual
      // fate — detection and signaling take simulated time.
      ++report.unprotected_victims;
      ++stats_.unprotected_victims;
      report.severed.push_back(SeveredVictim{id, link, c.primary.links.size(),
                                             double_hit, c.activations > 0});
      continue;
    }
    retreat(c);
    release_primary_min(c);
    unregister_primary(c);
    freed_bits |= c.primary_links;

    // Walk the covering channels in activation order.  A channel covers
    // this failure when its trigger set contains the failed link (segment
    // channels cover only their sub-path).  Each covering candidate must be
    // fully alive, spliceable, and have room for bmin on every link (its
    // reservation guaranteed this for single failures; overbooking debt
    // from earlier failures may not); candidates that fail are consumed and
    // the next sibling is tried — that fallback is exactly what the
    // multi-backup schemes buy.
    bool double_hit = false;
    bool activated_here = false;
    std::size_t consumed = 0;  // covering channels spent before success
    std::size_t j = 0;
    while (j < c.backups.size()) {
      if (!c.backups[j].trigger_links.test(link)) {
        ++j;
        continue;
      }
      if (c.backups[j].links.test(link)) {
        // Maximally-disjoint channel shared the failed link (bridge case):
        // it died with the primary.
        ++report.backups_died_with_primary;
        double_hit = true;
        ++consumed;
        remove_backup_channel(c, j);
        continue;
      }
      bool alive = true;
      for (topology::LinkId l : c.backups[j].path.links)
        if (links_[l].failed()) {
          alive = false;
          break;
        }
      if (!alive) {
        ++consumed;
        remove_backup_channel(c, j);
        continue;
      }
      const topology::Path patch = c.backups[j].path;  // copy before removal
      std::size_t sa = 0;
      std::size_t sb = 0;
      if (!splice_points(c.primary, patch, sa, sb)) {
        ++consumed;
        remove_backup_channel(c, j);
        continue;
      }
      topology::Path new_primary = splice_primary(c.primary, patch);
      if (!nodes_unique(new_primary)) {
        ++consumed;
        remove_backup_channel(c, j);
        continue;
      }
      // Drop its own reservation first so the headroom test is honest.
      remove_backup_channel(c, j);
      bool room = true;
      for (topology::LinkId l : patch.links) {
        if (links_[l].capacity() - links_[l].committed_min() <
            c.qos.bmin_kbps - LinkState::kEpsilon) {
          room = false;
          break;
        }
      }
      if (!room) {
        ++consumed;
        continue;  // channel spent; the next covering sibling may still work
      }
      // Switch over.  (The kept old-primary links just released this
      // connection's own bmin, so re-committing them cannot overflow.)
      c.primary = std::move(new_primary);
      c.primary_links = path_bits(c.primary);
      for (topology::LinkId l : c.primary.links) links_[l].commit_min(c.qos.bmin_kbps);
      register_primary(c);
      ++c.activations;
      activated_bits |= c.primary_links;
      activated.push_back(id);
      ++stats_.backups_activated;
      obs_.backups_activated.inc();
      obs_.scheme_activations.inc();
      obs::trace_event(obs::TraceKind::kBackupActivated,
                       static_cast<std::uint32_t>(id), link);
      // Recovery-time SLA sample: detection plus the scheme's switchover
      // cost — per-hop cross-connect signalling along the activated channel,
      // except under kDualDisjoint whose pre-cross-connected channels
      // actuate in parallel (one XC time regardless of length).
      double ttr = config_.recovery_detect_time;
      if (config_.backup_scheme == BackupScheme::kDualDisjoint)
        ttr += config_.recovery_xc_time_per_hop;
      else
        ttr += config_.recovery_xc_time_per_hop *
               static_cast<double>(patch.links.size());
      report.recovery_times.push_back(ttr);
      stats_.recovery_times.push_back(ttr);
      obs_.time_to_reroute.observe(ttr);
      if (consumed > 0 || c.siblings_lost > 0) {
        // A sibling beyond the first covering channel saved the day: the
        // dual-failure case the backup *set* exists for.  Counts both
        // channels consumed in this very call and siblings lost to earlier
        // failures (an SRLG fails link by link, so the double hit usually
        // lands across fail_link calls).  Explicitly not an unprotected
        // victim (the service never lapsed).
        ++report.survived_via_backup_set;
        ++report.drop_causes.survived_backup_set;
        obs_.backup_set_survivals.inc();
      }
      // Surviving siblings: full-span channels now defend the new primary —
      // drop any that cross a failed link, re-register the rest under the
      // new trigger.  Segment channels keep their own (unchanged) segments.
      std::size_t k = 0;
      while (k < c.backups.size()) {
        bool sib_dead = false;
        for (topology::LinkId l : c.backups[k].path.links)
          if (links_[l].failed()) {
            sib_dead = true;
            break;
          }
        if (sib_dead) {
          remove_backup_channel(c, k);
          ++c.siblings_lost;
          ++report.backups_lost;
          obs_.backups_lost.inc();
          obs::trace_event(obs::TraceKind::kBackupLost,
                           static_cast<std::uint32_t>(id), link);
          continue;
        }
        if (config_.backup_scheme != BackupScheme::kSegment) {
          retrigger_backup_channel(c, k, c.primary_links);
        } else {
          // The splice replaced part of the primary; a surviving segment
          // channel whose span overlapped the replaced range would be left
          // defending links no longer on the path.  Trim its trigger to the
          // new primary, and drop it outright when nothing remains.
          util::DynamicBitset trimmed = c.backups[k].trigger_links;
          trimmed &= c.primary_links;
          if (trimmed.none()) {
            remove_backup_channel(c, k);
            continue;
          }
          if (!(trimmed == c.backups[k].trigger_links))
            retrigger_backup_channel(c, k, std::move(trimmed));
        }
        ++k;
      }
      activated_here = true;
      break;
    }
    if (activated_here) continue;
    // No usable channel: strip any remaining (non-covering) channels — a
    // rescue or drop re-homes the connection, and the old set defends a
    // primary that no longer exists.
    remove_backup(c);
    ++report.unprotected_victims;
    ++stats_.unprotected_victims;
    stranded.push_back(Stranded{id, double_hit, c.activations > 0});
  }
  stats_.survived_via_backup_set += report.survived_via_backup_set;
  report.backups_activated = activated.size();
  report.activated_ids = activated;

  // Stranded victims: re-establish (fresh pair, then degraded single path)
  // under kReestablish, else drop — with per-cause accounting either way.
  std::vector<ConnectionId> rescued;
  for (const Stranded& s : stranded) {
    RescueOutcome out = RescueOutcome::kFailed;
    const bool attempt =
        config_.second_failure_policy == SecondFailurePolicy::kReestablish;
    if (attempt) out = rescue(mutable_connection(s.id));
    if (out != RescueOutcome::kFailed) {
      const DrConnection& c = conn_at(s.id);
      activated_bits |= c.primary_links;
      rescued.push_back(s.id);
      // Recovery-time SLA sample: a rescue signals a fresh end-to-end setup
      // along the new primary (no pre-reserved cross-connects to lean on).
      const double ttr = config_.recovery_detect_time +
                         config_.recovery_setup_time_per_hop *
                             static_cast<double>(c.primary.links.size());
      report.recovery_times.push_back(ttr);
      stats_.recovery_times.push_back(ttr);
      obs_.time_to_reroute.observe(ttr);
      if (out == RescueOutcome::kPair) {
        ++report.reestablished_pair;
        ++stats_.reestablished_pair;
        report.reestablished_ids.push_back(s.id);
      } else {
        ++report.reestablished_degraded;
        ++stats_.reestablished_degraded;
        report.degraded_ids.push_back(s.id);
      }
      obs_.reroutes.inc();
      obs::trace_event(obs::TraceKind::kReroute, static_cast<std::uint32_t>(s.id),
                       out == RescueOutcome::kPair ? 1u : 2u);
      continue;
    }
    if (s.double_hit)
      ++report.drop_causes.double_hit;
    else if (s.was_active)
      ++report.drop_causes.backup_hit_while_active;
    else
      ++report.drop_causes.primary_hit;
    if (attempt) ++report.drop_causes.reestablish_failed;
    report.dropped_ids.push_back(s.id);
    drop_active(s.id);
    ++stats_.connections_dropped;
    ++report.connections_dropped;
    obs_.drops.inc();
    obs_.scheme_drops.inc();
    obs_.active_connections.sub(1);
    obs::trace_event(obs::TraceKind::kDrop, static_cast<std::uint32_t>(s.id), link);
  }
  stats_.drop_causes += report.drop_causes;

  // Backup channels parked on the failed link are gone (siblings are
  // link-disjoint, so at most one channel per connection crosses it; the
  // rest of the set stays).
  for (ConnectionId id : backup_victims) {
    if (!is_active(id)) continue;
    DrConnection& c = mutable_connection(id);
    bool lost = false;
    std::size_t k = 0;
    while (k < c.backups.size()) {
      if (!c.backups[k].links.test(link)) {
        ++k;
        continue;
      }
      remove_backup_channel(c, k);
      ++c.siblings_lost;
      lost = true;
    }
    if (!lost) continue;
    ++report.backups_lost;
    obs_.backups_lost.inc();
    obs::trace_event(obs::TraceKind::kBackupLost, static_cast<std::uint32_t>(id), link);
  }

  // Retreat channels chained to the activated backups and re-established
  // paths (the paper's gamma transitions), then note who can gain from the
  // freed old-primary links.
  std::unordered_set<ConnectionId> activated_set(activated.begin(), activated.end());
  activated_set.insert(rescued.begin(), rescued.end());
  std::vector<ConnectionId> direct;
  std::vector<ConnectionId> gainers;
  util::DynamicBitset direct_union(graph_.num_links());
  for (std::size_t i = 0; i < active_ids_.size(); ++i) {
    const ConnectionId id = active_ids_[i];
    if (activated_set.count(id)) continue;
    const DrConnection& c = *active_conns_[i];
    if (c.recovering) continue;  // holds no primary resources
    if (c.primary_links.intersects(activated_bits)) {
      direct.push_back(id);
      direct_union |= c.primary_links;
    }
  }
  for (std::size_t i = 0; i < active_ids_.size(); ++i) {
    const ConnectionId id = active_ids_[i];
    if (activated_set.count(id)) continue;
    const DrConnection& c = *active_conns_[i];
    if (c.recovering) continue;  // holds no primary resources
    if (c.primary_links.intersects(activated_bits)) continue;
    if (c.primary_links.intersects(freed_bits) ||
        c.primary_links.intersects(direct_union))
      gainers.push_back(id);
  }
  std::sort(direct.begin(), direct.end());
  std::sort(gainers.begin(), gainers.end());

  std::unordered_map<ConnectionId, std::size_t> before;
  for (ConnectionId id : direct) before[id] = conn_at(id).extra_quanta;
  for (ConnectionId id : gainers) before[id] = conn_at(id).extra_quanta;
  for (ConnectionId id : direct) retreat(mutable_connection(id));

  // Replacement backups for survivors whose set is below the scheme's
  // target (the switchover consumed a channel, or one parked here died).
  for (ConnectionId id : activated) {
    if (!is_active(id)) continue;
    DrConnection& c = mutable_connection(id);
    if (!fully_protected(c) && establish_backup(c)) {
      ++report.backups_reestablished;
      ++stats_.backups_reestablished;
    }
  }
  for (ConnectionId id : backup_victims) {
    if (!is_active(id)) continue;
    DrConnection& c = mutable_connection(id);
    if (!fully_protected(c) && establish_backup(c)) {
      ++report.backups_reestablished;
      ++stats_.backups_reestablished;
    }
  }

  const auto [evicted, reestablished] = settle_overbooking_debt();
  report.backups_evicted = evicted;
  report.backups_reestablished += reestablished;

  // The four groups are mutually disjoint (direct/gainers exclude the
  // activated set; rescued victims were never activated), so one sort of the
  // concatenation yields the sorted-unique candidate list.
  std::vector<ConnectionId> candidates = direct;
  candidates.insert(candidates.end(), gainers.begin(), gainers.end());
  candidates.insert(candidates.end(), activated.begin(), activated.end());
  candidates.insert(candidates.end(), rescued.begin(), rescued.end());
  std::sort(candidates.begin(), candidates.end());
  redistribute(candidates);

  report.changes.reserve(direct.size() + gainers.size());
  for (ConnectionId id : direct)
    report.changes.push_back(
        StateChange{id, Chaining::kDirect, before[id], conn_at(id).extra_quanta});
  for (ConnectionId id : gainers)
    report.changes.push_back(StateChange{id, Chaining::kIndirect, before[id],
                                         conn_at(id).extra_quanta});
  return report;
}

std::size_t Network::repair_link(topology::LinkId link) {
  if (link >= links_.size()) throw std::invalid_argument("network: unknown link");
  if (!links_[link].failed()) return 0;
  links_[link].set_failed(false);
  goal_.set_link_usable(link, true);
  ++stats_.repairs;
  obs_.link_repairs.inc();

  std::size_t reestablished = 0;
  std::vector<ConnectionId> ids = active_ids_;
  std::sort(ids.begin(), ids.end());
  for (ConnectionId id : ids) {
    DrConnection& c = mutable_connection(id);
    if (fully_protected(c)) continue;
    if (establish_backup(c)) {
      ++reestablished;
      ++stats_.backups_reestablished;
    }
  }
  obs::trace_event(obs::TraceKind::kRepairLink, link,
                   static_cast<std::uint32_t>(reestablished));
  return reestablished;
}

std::vector<FailureReport> Network::fail_node(topology::NodeId node) {
  if (node >= graph_.num_nodes()) throw std::invalid_argument("network: unknown node");
  std::vector<FailureReport> reports;
  for (const auto& adj : graph_.adjacent(node)) reports.push_back(fail_link(adj.link));
  return reports;
}

std::size_t Network::repair_node(topology::NodeId node) {
  if (node >= graph_.num_nodes()) throw std::invalid_argument("network: unknown node");
  std::size_t restored = 0;
  for (const auto& adj : graph_.adjacent(node)) restored += repair_link(adj.link);
  return restored;
}

std::size_t Network::preempt_all_elastic() {
  std::size_t preempted = 0;
  for (ConnectionId id : active_ids_) {
    DrConnection& c = mutable_connection(id);
    if (c.extra_quanta > 0) {
      retreat(c);
      ++preempted;
    }
  }
  return preempted;
}

// ---- Simulated recovery control plane ---------------------------------------

bool Network::is_recovering(ConnectionId id) const {
  const auto it = slot_of_.find(id);
  return it != slot_of_.end() && it->second.ptr->recovering;
}

std::optional<topology::Path> Network::claim_recovery_channel(ConnectionId id,
                                                              std::size_t& consumed) {
  DrConnection& c = mutable_connection(id);
  if (!c.recovering)
    throw std::logic_error("network: claim_recovery_channel on a non-recovering id");
  const topology::LinkId link = c.recovering_link;
  std::size_t j = 0;
  while (j < c.backups.size()) {
    if (!c.backups[j].trigger_links.test(link)) {
      ++j;
      continue;
    }
    // Covering candidate: must be fully alive, spliceable, and yield a live
    // simple path.  (Channels crossing links failed so far were swept at
    // failure time; the alive test also covers the spliced-in old-primary
    // segments, which later failures may have hit while the victim was
    // unregistered.)  Headroom is checked at commit, not here.
    const topology::Path patch = c.backups[j].path;  // copy before removal
    bool ok = true;
    for (topology::LinkId l : patch.links)
      if (links_[l].failed()) {
        ok = false;
        break;
      }
    std::size_t sa = 0;
    std::size_t sb = 0;
    if (ok) ok = splice_points(c.primary, patch, sa, sb);
    if (ok) {
      const topology::Path np = splice_primary(c.primary, patch);
      ok = nodes_unique(np);
      if (ok) {
        for (topology::LinkId l : np.links)
          if (links_[l].failed()) {
            ok = false;
            break;
          }
      }
    }
    remove_backup_channel(c, j);
    if (ok) return patch;
    ++consumed;  // channel spent; the next covering sibling may still work
  }
  return std::nullopt;
}

Network::RecoveryCommit Network::complete_recovery(ConnectionId id,
                                                   const topology::Path& patch,
                                                   double ttr, double blackout,
                                                   bool via_fallback) {
  DrConnection& c = mutable_connection(id);
  if (!c.recovering)
    throw std::logic_error("network: complete_recovery on a non-recovering id");
  const topology::LinkId severed_link = c.recovering_link;
  // Re-validate everything the in-flight signaling raced: a second failure
  // may have hit the patch or a kept old-primary segment, and ledger churn
  // may have consumed the headroom the channel's (released) reservation once
  // guaranteed.
  std::size_t sa = 0;
  std::size_t sb = 0;
  if (!splice_points(c.primary, patch, sa, sb)) return RecoveryCommit::kChannelDead;
  topology::Path new_primary = splice_primary(c.primary, patch);
  if (!nodes_unique(new_primary)) return RecoveryCommit::kChannelDead;
  for (topology::LinkId l : new_primary.links) {
    if (links_[l].failed()) return RecoveryCommit::kChannelDead;
    if (links_[l].capacity() - links_[l].committed_min() <
        c.qos.bmin_kbps - LinkState::kEpsilon)
      return RecoveryCommit::kChannelDead;
  }

  // Switch over.
  c.primary = std::move(new_primary);
  c.primary_links = path_bits(c.primary);
  for (topology::LinkId l : c.primary.links) links_[l].commit_min(c.qos.bmin_kbps);
  register_primary(c);
  c.recovering = false;
  c.recovering_link = 0;
  ++c.activations;
  ++stats_.backups_activated;
  obs_.backups_activated.inc();
  obs_.scheme_activations.inc();
  obs::trace_event(obs::TraceKind::kBackupActivated, static_cast<std::uint32_t>(id),
                   severed_link);
  stats_.recovery_times.push_back(ttr);
  obs_.time_to_reroute.observe(ttr);
  stats_.blackout_times.push_back(blackout);
  obs_.blackout_time.observe(blackout);
  if (via_fallback || c.siblings_lost > 0) {
    ++stats_.survived_via_backup_set;
    ++stats_.drop_causes.survived_backup_set;
    obs_.backup_set_survivals.inc();
  }
  // Surviving siblings: full-span channels now defend the new primary —
  // drop any that cross a failed link, re-register the rest under the new
  // trigger.  Segment channels keep their own (unchanged) segments.
  std::size_t k = 0;
  while (k < c.backups.size()) {
    bool sib_dead = false;
    for (topology::LinkId l : c.backups[k].path.links)
      if (links_[l].failed()) {
        sib_dead = true;
        break;
      }
    if (sib_dead) {
      remove_backup_channel(c, k);
      ++c.siblings_lost;
      obs_.backups_lost.inc();
      obs::trace_event(obs::TraceKind::kBackupLost, static_cast<std::uint32_t>(id),
                       severed_link);
      continue;
    }
    if (config_.backup_scheme != BackupScheme::kSegment) {
      retrigger_backup_channel(c, k, c.primary_links);
    } else {
      // Same trim as the synchronous switchover: the committed patch may
      // have replaced primary links a surviving segment channel defended.
      util::DynamicBitset trimmed = c.backups[k].trigger_links;
      trimmed &= c.primary_links;
      if (trimmed.none()) {
        remove_backup_channel(c, k);
        continue;
      }
      if (!(trimmed == c.backups[k].trigger_links))
        retrigger_backup_channel(c, k, std::move(trimmed));
    }
    ++k;
  }
  // Chained channels retreat before the freed/claimed capacity is re-shared
  // — the same gamma-transition processing fail_link runs synchronously.
  const ChainSets& chain = classify_against(c.primary.links, c.primary_links, id);
  for (ConnectionId cid : chain.direct) retreat(mutable_connection(cid));
  if (!fully_protected(c) && establish_backup(c)) ++stats_.backups_reestablished;
  settle_overbooking_debt();
  merge_scratch_.clear();
  std::set_union(chain.direct.begin(), chain.direct.end(), chain.indirect.begin(),
                 chain.indirect.end(), std::back_inserter(merge_scratch_));
  merge_scratch_.insert(
      std::upper_bound(merge_scratch_.begin(), merge_scratch_.end(), id), id);
  redistribute(merge_scratch_);
  return RecoveryCommit::kCommitted;
}

bool Network::complete_recovery_rescue(ConnectionId id, double ttr, double blackout) {
  DrConnection& c = mutable_connection(id);
  if (!c.recovering)
    throw std::logic_error("network: complete_recovery_rescue on a non-recovering id");
  // The remaining set defends a primary that no longer exists.
  remove_backup(c);
  c.recovering = false;  // rescue() re-homes through the normal paths
  const RescueOutcome out = rescue(c);
  if (out == RescueOutcome::kFailed) {
    c.recovering = true;  // caller must drop_recovering
    return false;
  }
  c.recovering_link = 0;
  stats_.recovery_times.push_back(ttr);
  obs_.time_to_reroute.observe(ttr);
  stats_.blackout_times.push_back(blackout);
  obs_.blackout_time.observe(blackout);
  if (out == RescueOutcome::kPair) {
    ++stats_.reestablished_pair;
  } else {
    ++stats_.reestablished_degraded;
  }
  obs_.reroutes.inc();
  obs::trace_event(obs::TraceKind::kReroute, static_cast<std::uint32_t>(id),
                   out == RescueOutcome::kPair ? 1u : 2u);
  const ChainSets& chain = classify_against(c.primary.links, c.primary_links, id);
  for (ConnectionId cid : chain.direct) retreat(mutable_connection(cid));
  settle_overbooking_debt();
  merge_scratch_.clear();
  std::set_union(chain.direct.begin(), chain.direct.end(), chain.indirect.begin(),
                 chain.indirect.end(), std::back_inserter(merge_scratch_));
  merge_scratch_.insert(
      std::upper_bound(merge_scratch_.begin(), merge_scratch_.end(), id), id);
  redistribute(merge_scratch_);
  return true;
}

void Network::drop_recovering(ConnectionId id, bool double_hit, bool was_active,
                              bool deadline_missed, bool attempted_reestablish,
                              double blackout) {
  DrConnection& c = mutable_connection(id);
  if (!c.recovering)
    throw std::logic_error("network: drop_recovering on a non-recovering id");
  remove_backup(c);
  if (deadline_missed)
    ++stats_.drop_causes.deadline_miss;
  else if (double_hit)
    ++stats_.drop_causes.double_hit;
  else if (was_active)
    ++stats_.drop_causes.backup_hit_while_active;
  else
    ++stats_.drop_causes.primary_hit;
  if (attempted_reestablish) ++stats_.drop_causes.reestablish_failed;
  stats_.blackout_times.push_back(blackout);
  obs_.blackout_time.observe(blackout);
  const topology::LinkId link = c.recovering_link;
  drop_active(id);
  ++stats_.connections_dropped;
  obs_.drops.inc();
  obs_.scheme_drops.inc();
  obs_.active_connections.sub(1);
  obs::trace_event(obs::TraceKind::kDrop, static_cast<std::uint32_t>(id), link);
}

std::pair<std::size_t, std::size_t> Network::settle_overbooking_debt() {
  std::size_t evicted = 0;
  std::vector<ConnectionId> to_rehome;
  for (topology::LinkId l = 0; l < links_.size(); ++l) {
    while (links_[l].committed_min() + backups_.reservation(l) >
               links_[l].capacity() + LinkState::kEpsilon &&
           backups_.count_on_link(l) > 0) {
      auto ids = backups_.backups_on_link(l);
      std::sort(ids.begin(), ids.end());
      DrConnection& c = mutable_connection(ids.front());
      // Evict only the channel parked on the overflowing link; the rest of
      // the set is innocent and keeps protecting.
      for (std::size_t k = 0; k < c.backups.size(); ++k) {
        if (c.backups[k].links.test(l)) {
          remove_backup_channel(c, k);
          ++c.siblings_lost;
          break;
        }
      }
      to_rehome.push_back(c.id);
      ++evicted;
      ++stats_.backups_evicted;
    }
  }
  std::size_t reestablished = 0;
  for (ConnectionId id : to_rehome) {
    if (!is_active(id)) continue;
    DrConnection& c = mutable_connection(id);
    if (!fully_protected(c) && establish_backup(c)) {
      ++reestablished;
      ++stats_.backups_reestablished;
    }
  }
  return {evicted, reestablished};
}

// ---- Metrics -----------------------------------------------------------------------

double Network::mean_reserved_kbps() const {
  // Recovering victims carry no reservation; they are excluded from both
  // numerator and denominator (with the protocol off, none exist and the
  // aggregates are bit-identical to the legacy scans).
  double total = 0.0;
  std::size_t n = 0;
  for (const DrConnection* c : active_conns_) {
    if (c->recovering) continue;
    total += c->reserved_kbps();
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double Network::mean_primary_hops() const {
  double total = 0.0;
  std::size_t n = 0;
  for (const DrConnection* c : active_conns_) {
    if (c->recovering) continue;
    total += static_cast<double>(c->primary.hops());
    ++n;
  }
  return n == 0 ? 0.0 : total / static_cast<double>(n);
}

double Network::protected_fraction() const {
  std::size_t n = 0;
  std::size_t carrying = 0;
  for (const DrConnection* c : active_conns_) {
    if (c->recovering) continue;
    ++carrying;
    if (c->has_backup()) ++n;
  }
  return carrying == 0 ? 0.0
                       : static_cast<double>(n) / static_cast<double>(carrying);
}

// ---- Invariants ----------------------------------------------------------------------

void Network::audit() const {
  try {
    audit_impl();
  } catch (const std::logic_error& e) {
    // With the flight recorder on, the violation message carries the path of
    // a JSON dump of the last-N trace events (obs/trace.hpp).
    throw std::logic_error(obs::annotate_audit_failure(e.what()));
  }
}

void Network::audit_impl() const {
  constexpr double kEps = 1e-6;
  // Per-link ledgers against per-connection ground truth.
  std::vector<double> committed(links_.size(), 0.0);
  std::vector<double> granted(links_.size(), 0.0);
  std::vector<std::size_t> backup_count(links_.size(), 0);
  for (ConnectionId id : active_ids_) {
    const DrConnection& c = conn_at(id);
    if (c.extra_quanta > c.qos.max_extra_quanta())
      throw std::logic_error("invariant: extra quanta above maximum");
    // Path structure.
    if (c.primary.nodes.empty() || c.primary.nodes.front() != c.src ||
        c.primary.nodes.back() != c.dst)
      throw std::logic_error("invariant: primary endpoints mismatch");
    if (path_bits(c.primary) == c.primary_links) {
      // consistent
    } else {
      throw std::logic_error("invariant: primary bitset mismatch");
    }
    if (c.recovering) {
      // A recovering victim parks with its primary resources released: no
      // elastic grant, no committed minimums, no registry entries.  Its
      // (stale) primary path is kept only as splice/rescue context, so the
      // failed-link and ledger checks do not apply to it.
      if (!config_.recovery_protocol)
        throw std::logic_error("invariant: recovering victim with protocol off");
      if (c.extra_quanta != 0)
        throw std::logic_error("invariant: recovering victim holds elastic grant");
      if (!c.registry_slots.empty())
        throw std::logic_error("invariant: recovering victim still registered");
      // (The severed link may legitimately have been repaired while the
      // victim was still recovering, so its failed state is unconstrained.)
      if (c.recovering_link >= links_.size())
        throw std::logic_error("invariant: recovering link out of range");
    } else {
      // Elastic-share bounds: bmin <= reserved <= bmax.
      const double reserved = c.reserved_kbps();
      if (reserved < c.qos.bmin_kbps - kEps || reserved > c.qos.bmax_kbps + kEps)
        throw std::logic_error("invariant: reserved bandwidth outside [bmin, bmax]");
      for (topology::LinkId l : c.primary.links) {
        if (links_[l].failed())
          throw std::logic_error("invariant: primary on failed link");
        committed[l] += c.qos.bmin_kbps;
        granted[l] += c.extra_kbps();
      }
      // Cached registry slots must round-trip to this connection.
      if (c.registry_slots.size() != c.primary.links.size())
        throw std::logic_error("invariant: registry slot count mismatch");
      for (std::size_t i = 0; i < c.primary.links.size(); ++i) {
        const LinkRegistry& reg = primaries_on_link_[c.primary.links[i]];
        if (c.registry_slots[i] >= reg.ids.size() ||
            reg.ids[c.registry_slots[i]] != c.id)
          throw std::logic_error("invariant: stale registry slot");
        if (reg.slots[c.registry_slots[i]] != c.arena_slot)
          throw std::logic_error("invariant: registry arena-slot column stale");
      }
    }
    if (c.has_backup()) {
      if (c.backup_status != BackupStatus::kProtected)
        throw std::logic_error("invariant: backup status mismatch");
      // Scheme cap on the set size.
      if (config_.backup_scheme == BackupScheme::kSingle && c.backups.size() > 1)
        throw std::logic_error("invariant: multiple backups under kSingle");
      if (config_.backup_scheme == BackupScheme::kDualDisjoint && c.backups.size() > 2)
        throw std::logic_error("invariant: more than two backups under kDualDisjoint");
      util::DynamicBitset sibling_union(links_.size());
      for (std::size_t bi = 0; bi < c.backups.size(); ++bi) {
        const BackupChannel& ch = c.backups[bi];
        if (ch.path.nodes.empty())
          throw std::logic_error("invariant: empty backup channel path");
        if (config_.backup_scheme == BackupScheme::kSegment) {
          // A segment channel spans two nodes of the primary and defends
          // exactly the primary links between them.
          std::size_t sa = 0;
          std::size_t sb = 0;
          if (!splice_points(c.primary, ch.path, sa, sb))
            throw std::logic_error("invariant: segment backup not spliceable");
        } else if (ch.path.nodes.front() != c.src || ch.path.nodes.back() != c.dst) {
          throw std::logic_error("invariant: backup endpoints mismatch");
        }
        if (!(path_bits(ch.path) == ch.links))
          throw std::logic_error("invariant: backup bitset mismatch");
        // The trigger set defends existing primary links only.
        if (ch.trigger_links.none())
          throw std::logic_error("invariant: backup channel with empty trigger");
        bool trigger_subset = true;
        ch.trigger_links.for_each_set_bit([&](std::size_t f) {
          if (!c.primary_links.test(f)) trigger_subset = false;
        });
        if (!trigger_subset)
          throw std::logic_error("invariant: backup trigger outside the primary");
        // No backup shares a link with a sibling: the scheme's disjointness
        // promise, and what lets BackupManager key entries by connection.
        if (ch.links.intersects(sibling_union))
          throw std::logic_error("invariant: backup channels share a link");
        // SRLG promise (kRequire): no channel shares a risk group with its
        // primary or with a sibling it must outlive.  (Holds for sets
        // provisioned after set_risk_groups; declare groups before
        // admitting traffic when running under kRequire.)
        if (config_.srlg_policy == SrlgPolicy::kRequire) {
          for (const util::DynamicBitset& g : risk_groups_) {
            if (!g.intersects(ch.links)) continue;
            if (g.intersects(c.primary_links))
              throw std::logic_error("invariant: backup shares an SRLG with its primary");
            if (g.intersects(sibling_union))
              throw std::logic_error("invariant: backup channels share an SRLG");
          }
        }
        sibling_union |= ch.links;
        // Disjointness per policy, and the cached overlap count.
        std::size_t overlap = 0;
        for (topology::LinkId l : ch.path.links) {
          if (links_[l].failed())
            throw std::logic_error("invariant: backup on failed link");
          ++backup_count[l];
          if (c.primary_links.test(l)) ++overlap;
        }
        if (overlap != ch.overlap_links)
          throw std::logic_error("invariant: backup overlap count stale");
        if (config_.require_full_disjoint && overlap > 0)
          throw std::logic_error("invariant: backup overlaps primary under full disjointness");
        // Only the first full-span channel may lean on maximal (not full)
        // disjointness; additional channels and all segment detours are
        // established fully disjoint.
        if (overlap > 0 &&
            (bi > 0 || config_.backup_scheme == BackupScheme::kSegment))
          throw std::logic_error("invariant: non-primary backup channel overlaps primary");
        if (overlap == ch.path.links.size())
          throw std::logic_error("invariant: backup fully overlaps its primary");
      }
    } else if (c.backup_status == BackupStatus::kProtected) {
      throw std::logic_error("invariant: protected without a backup");
    }
  }
  for (topology::LinkId l = 0; l < links_.size(); ++l) {
    const LinkState& s = links_[l];
    if (std::abs(s.committed_min() - committed[l]) > kEps)
      throw std::logic_error("invariant: committed_min ledger mismatch on link " +
                             std::to_string(l));
    if (std::abs(s.elastic_granted() - granted[l]) > kEps)
      throw std::logic_error("invariant: elastic ledger mismatch on link " +
                             std::to_string(l));
    if (std::abs(s.backup_reserved() - backups_.reservation(l)) > kEps)
      throw std::logic_error("invariant: backup reservation out of sync on link " +
                             std::to_string(l));
    if (std::abs(backups_.reservation(l) - backups_.recompute_reservation(l)) > kEps)
      throw std::logic_error("invariant: cached backup reservation stale on link " +
                             std::to_string(l));
    if (s.committed_min() + s.backup_reserved() > s.capacity() + kEps)
      throw std::logic_error("invariant: admission ledger overflow on link " +
                             std::to_string(l));
    if (s.committed_min() + s.elastic_granted() > s.capacity() + kEps)
      throw std::logic_error("invariant: elastic ledger overflow on link " +
                             std::to_string(l));
    // Registry round-trip.
    double reg_min = 0.0;
    const LinkRegistry& reg = primaries_on_link_[l];
    if (reg.slots.size() != reg.ids.size())
      throw std::logic_error("invariant: registry column length mismatch on link " +
                             std::to_string(l));
    for (std::size_t k = 0; k < reg.ids.size(); ++k) {
      const auto it = slot_of_.find(reg.ids[k]);
      if (it == slot_of_.end())
        throw std::logic_error("invariant: stale primary registration");
      if (it->second.slot != reg.slots[k])
        throw std::logic_error("invariant: registry slot column out of sync");
      const DrConnection& rc = *it->second.ptr;
      if (!rc.primary_links.test(l))
        throw std::logic_error("invariant: registered primary does not traverse link");
      reg_min += rc.qos.bmin_kbps;
    }
    if (std::abs(reg_min - committed[l]) > kEps)
      throw std::logic_error("invariant: primary registry mismatch on link " +
                             std::to_string(l));
    // Backup registry round-trip against per-connection backup paths.
    if (backups_.count_on_link(l) != backup_count[l])
      throw std::logic_error("invariant: backup registry count mismatch on link " +
                             std::to_string(l));
    for (ConnectionId id : backups_.backups_on_link(l)) {
      const auto it = slot_of_.find(id);
      if (it == slot_of_.end())
        throw std::logic_error("invariant: stale backup registration");
      if (!it->second.ptr->backup_on_link(l))
        throw std::logic_error("invariant: registered backup does not traverse link");
    }
    if (s.failed() && backups_.count_on_link(l) != 0)
      throw std::logic_error("invariant: backup parked on failed link " +
                             std::to_string(l));
    // Goal-directed search bound: the distance field must mask exactly the
    // failed links, or its lower bounds could prune a live route.
    if (goal_.link_usable(l) == s.failed())
      throw std::logic_error("invariant: goal-field usable mask stale on link " +
                             std::to_string(l));
  }
  // BackupManager internals: slot caches, flat scenario ledger, interning.
  backups_.audit();
  // Active-id bookkeeping, and arena slot liveness against the mirrors.
  if (active_ids_.size() != slot_of_.size())
    throw std::logic_error("invariant: active id count mismatch");
  if (active_conns_.size() != active_ids_.size() ||
      active_slots_.size() != active_ids_.size())
    throw std::logic_error("invariant: active pointer mirror size mismatch");
  if (arena_.size() != slot_of_.size() + free_slots_.size())
    throw std::logic_error("invariant: arena slot accounting mismatch");
  if (soa_extra_quanta_.size() != arena_.size() ||
      soa_max_extra_.size() != arena_.size() ||
      soa_increment_.size() != arena_.size() || soa_utility_.size() != arena_.size())
    throw std::logic_error("invariant: SoA ledger length mismatch");
  for (std::size_t i = 0; i < active_ids_.size(); ++i) {
    const std::uint32_t slot = active_slots_[i];
    if (slot >= arena_.size())
      throw std::logic_error("invariant: active slot out of arena bounds");
    const DrConnection& c = arena_[slot];
    if (c.id != active_ids_[i])
      throw std::logic_error("invariant: arena record id mismatch");
    if (c.arena_slot != slot || c.active_pos != i)
      throw std::logic_error("invariant: arena back-pointers stale");
    if (active_conns_[i] != &c)
      throw std::logic_error("invariant: active pointer mirror stale");
    const auto it = slot_of_.find(c.id);
    if (it == slot_of_.end() || it->second.slot != slot)
      throw std::logic_error("invariant: slot index mismatch");
    if (it->second.ptr != &c)
      throw std::logic_error("invariant: slot index cached pointer stale");
    if (soa_extra_quanta_[slot] != c.extra_quanta ||
        soa_max_extra_[slot] != c.qos.max_extra_quanta() ||
        soa_increment_[slot] != c.qos.increment_kbps ||
        soa_utility_[slot] != c.qos.utility)
      throw std::logic_error("invariant: SoA row out of sync with arena record");
  }
  // Every freed slot must hold a blank record (no id, nothing registered) so
  // a stale reference through a recycled slot is caught as an id mismatch.
  for (std::uint32_t slot : free_slots_) {
    if (slot >= arena_.size())
      throw std::logic_error("invariant: free slot out of arena bounds");
    if (arena_[slot].id != 0 || slot_of_.count(arena_[slot].id) > 0 ||
        !arena_[slot].backups.empty())
      throw std::logic_error("invariant: free slot holds a live record");
  }
}

}  // namespace eqos::net
