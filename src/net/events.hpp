// Event reports emitted by Network operations.
//
// The Markov-model parameters (Pf, Ps, A, B, T, F — Section 3.3) are
// measured from simulation, so every state-changing Network operation
// returns a structured report: which existing channels were directly or
// indirectly chained to the event and how each one's elastic state moved.
// The sim::TransitionRecorder consumes these reports; they are also what the
// tests assert on.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/connection.hpp"
#include "topology/graph.hpp"

namespace eqos::net {

/// Relationship of an existing channel to the triggering event.
enum class Chaining : std::uint8_t {
  kDirect,    ///< shares >= 1 link with the event's path(s)
  kIndirect,  ///< disjoint from the event, but shares a link with a
              ///< directly-chained channel (the paper's indirect chaining)
};

/// One existing channel's elastic state around an event.
struct StateChange {
  ConnectionId id = 0;
  Chaining chaining = Chaining::kDirect;
  std::size_t old_quanta = 0;  ///< extra increments before the event
  std::size_t new_quanta = 0;  ///< extra increments after the event
};

/// Why a DR-connection request was rejected.
enum class RejectReason : std::uint8_t {
  kNone,
  kNoPrimaryRoute,  ///< no route with bmin admissible on every link
  kNoBackupRoute,   ///< primary found, but no admissible backup route
};

/// Result of Network::request_connection.
struct ArrivalOutcome {
  bool accepted = false;
  RejectReason reject_reason = RejectReason::kNone;
  ConnectionId id = 0;  ///< valid when accepted
  /// Number of connections active before this request (Pf/Ps denominator).
  std::size_t existing_before = 0;
  /// Every directly- or indirectly-chained existing channel, moved or not.
  std::vector<StateChange> changes;
  /// Extra increments granted to the new connection right after admission.
  std::size_t initial_quanta = 0;
  bool backup_established = false;
  /// Links shared between the backup and its own primary (0 = fully
  /// link-disjoint).
  std::size_t backup_overlap_links = 0;
};

/// Result of Network::terminate_connection.
struct TerminationReport {
  ConnectionId id = 0;
  std::size_t existing_after = 0;  ///< active connections after removal
  /// Channels that shared >= 1 link with the departed primary (all
  /// kDirect; only they may gain per Section 3.2).
  std::vector<StateChange> changes;
};

/// Per-cause accounting of connections lost to failures.  The categories
/// are mutually exclusive with precedence double-hit > backup-hit-while-
/// active > primary-hit; `reestablish_failed` additionally counts how many
/// of those drops went through a re-establishment attempt that found no
/// admissible route (SecondFailurePolicy::kReestablish only).
struct LossBreakdown {
  /// Primary hit on a connection that had never switched to its backup and
  /// whose backup (if any) did not share the failed link — it simply had no
  /// usable backup (never established, lost earlier, or no activation
  /// headroom after multiplexing overbooked).
  std::size_t primary_hit = 0;
  /// Second failure: the failed link hit an activated (former-backup) path.
  std::size_t backup_hit_while_active = 0;
  /// The same failure killed primary and backup together: the backup shared
  /// the failed link (bridge or SRLG overlap; only maximal — not full —
  /// disjointness was possible).
  std::size_t double_hit = 0;
  /// Drops above for which a re-establishment attempt (fresh disjoint pair,
  /// then degraded single path) was made and failed.
  std::size_t reestablish_failed = 0;
  /// Simulated recovery control plane only: the victim's recovery (however
  /// it would otherwise have ended) overran its per-class deadline and the
  /// connection was dropped mid-recovery.
  std::size_t deadline_miss = 0;
  /// Not a loss: victims that *survived* because a pre-provisioned sibling
  /// beyond the first covering channel took over (multi-backup schemes).
  /// Recorded here so the per-cause breakdown shows, next to each loss
  /// category, how often the backup set defused what would otherwise have
  /// been a double-hit.  Excluded from total().
  std::size_t survived_backup_set = 0;

  [[nodiscard]] std::size_t total() const noexcept {
    return primary_hit + backup_hit_while_active + double_hit + deadline_miss;
  }
  LossBreakdown& operator+=(const LossBreakdown& o) noexcept {
    primary_hit += o.primary_hit;
    backup_hit_while_active += o.backup_hit_while_active;
    double_hit += o.double_hit;
    reestablish_failed += o.reestablish_failed;
    deadline_miss += o.deadline_miss;
    survived_backup_set += o.survived_backup_set;
    return *this;
  }
};

/// One primary victim handed to the simulated recovery control plane
/// (NetworkConfig::recovery_protocol): fail_link severed its primary and
/// marked it kRecovering instead of rescuing it synchronously.  The plane
/// consumes these to seed per-victim detection/signaling state machines.
struct SeveredVictim {
  ConnectionId id = 0;
  topology::LinkId link = 0;        ///< the failed link that hit the primary
  /// Number of hops of the severed primary (sizes a kReestablish setup).
  std::size_t primary_hops = 0;
  bool double_hit = false;          ///< a covering backup died with the primary
  bool was_active = false;          ///< the hit path was an activated former backup
};

/// Result of Network::fail_link.
struct FailureReport {
  topology::LinkId link = 0;
  std::size_t existing_before = 0;
  std::size_t primaries_hit = 0;        ///< primaries traversing the failed link
  std::size_t backups_activated = 0;    ///< successful switchovers
  std::size_t connections_dropped = 0;  ///< victims with no usable backup
  std::size_t backups_lost = 0;         ///< backups parked on the failed link
  /// Victims whose backup shared the failed link with their primary (only
  /// maximally — not fully — disjoint protection was possible, e.g. across
  /// a bridge); these cannot switch over.
  std::size_t backups_died_with_primary = 0;
  std::size_t backups_reestablished = 0;
  std::size_t backups_evicted = 0;      ///< overbooking overflow evictions
  /// Primaries hit whose backup could not seamlessly take over (no backup,
  /// backup sharing the failed link, or no activation headroom).  Every such
  /// victim suffers a service disruption whatever its eventual fate.
  std::size_t unprotected_victims = 0;
  /// Victims re-homed onto a fresh link-disjoint primary/backup pair
  /// (SecondFailurePolicy::kReestablish outcome (a)).
  std::size_t reestablished_pair = 0;
  /// Victims re-homed degraded: a single path at bmin, flagged unprotected,
  /// with a backup retry pending on the next repair (outcome (b)).
  std::size_t reestablished_degraded = 0;
  /// Victims that survived via a sibling beyond the first covering channel
  /// (also tallied in drop_causes.survived_backup_set).
  std::size_t survived_via_backup_set = 0;
  /// Why each dropped connection was lost (outcome (c)).
  LossBreakdown drop_causes;
  /// Time-to-reroute of every victim that kept service (switchover or
  /// rescue), in simulated time units, in victim-processing order.  Dropped
  /// victims contribute no sample — the SLA metric measures recovery, and
  /// drops are already accounted in drop_causes.
  std::vector<double> recovery_times;
  /// Channels chained to the activated backups (retreat + re-share moves).
  std::vector<StateChange> changes;
  /// Connections that switched to their backups (ascending id).
  std::vector<ConnectionId> activated_ids;
  /// Connections lost to this failure (ascending id).
  std::vector<ConnectionId> dropped_ids;
  /// Connections re-established on a fresh disjoint pair (ascending id).
  std::vector<ConnectionId> reestablished_ids;
  /// Connections re-established degraded at bmin (ascending id).
  std::vector<ConnectionId> degraded_ids;
  /// Simulated recovery control plane only (otherwise empty): victims this
  /// failure severed into the kRecovering state, in victim-processing
  /// (ascending-id) order, for the sim layer to pick up.
  std::vector<SeveredVictim> severed;
};

/// Counters accumulated over a Network's lifetime.
struct NetworkStats {
  std::size_t requests = 0;
  std::size_t accepted = 0;
  std::size_t rejected_no_primary = 0;
  std::size_t rejected_no_backup = 0;
  std::size_t terminated = 0;
  std::size_t failures_injected = 0;
  std::size_t repairs = 0;
  std::size_t backups_activated = 0;
  std::size_t connections_dropped = 0;
  std::size_t backups_reestablished = 0;
  std::size_t backups_evicted = 0;
  std::size_t unprotected_victims = 0;      ///< victims with no usable backup
  std::size_t reestablished_pair = 0;       ///< rescued onto a fresh disjoint pair
  std::size_t reestablished_degraded = 0;   ///< rescued degraded at bmin
  LossBreakdown drop_causes;                ///< why dropped connections were lost
  /// Total elastic increment changes (grant or revoke, per connection, in
  /// quanta) — the adaptation-churn metric of ablation A3.
  std::size_t quanta_adjustments = 0;
  /// Victims that survived via a sibling beyond the first covering channel.
  std::size_t survived_via_backup_set = 0;
  /// Every victim's time-to-reroute (see FailureReport::recovery_times),
  /// accumulated over the network's lifetime in event order — the sample
  /// set behind the p50/p95/p99 recovery SLA columns.
  std::vector<double> recovery_times;
  /// Simulated recovery control plane only: per-victim service-interruption
  /// (blackout) time — failure instant to restored service for survivors,
  /// failure instant to drop for victims lost mid-recovery.  Unlike
  /// recovery_times, dropped victims DO contribute a sample here: blackout
  /// measures interruption, not successful recovery.
  std::vector<double> blackout_times;
};

}  // namespace eqos::net
