// Utility / revenue accounting.
//
// The paper's economic framing (Section 1): extra resources granted at run
// time yield "more 'utility' for the client/application and hence
// contribute more revenue to the network service provider".  This header
// makes that measurable: a linear tariff over the guaranteed minimum and the
// elastic extra, with each connection's elastic value scaled by its declared
// utility weight.  The same tariff can be evaluated analytically from a
// solved bandwidth chain (core::expected_revenue_per_connection), letting
// the operator price capacity from the model alone.
#pragma once

#include <cstddef>

#include "net/network.hpp"

namespace eqos::net {

/// Linear tariff (currency units per Kb/s per unit time).
struct RevenueModel {
  double base_rate_per_kbps = 1.0;     ///< price of the guaranteed minimum
  double elastic_rate_per_kbps = 0.5;  ///< price of each granted extra Kb/s

  /// Throws std::invalid_argument on negative rates.
  void validate() const;
};

/// Network-wide snapshot of the tariff applied to all active connections.
struct RevenueReport {
  std::size_t connections = 0;
  double base = 0.0;     ///< sum of bmin * base rate
  double elastic = 0.0;  ///< sum of extra * elastic rate
  double total = 0.0;
  /// Client-side utility: sum over connections of utility * extra Kb/s.
  double client_utility = 0.0;
};

/// Evaluates the tariff against the network's current reservations.
[[nodiscard]] RevenueReport assess_revenue(const Network& network,
                                           const RevenueModel& model);

}  // namespace eqos::net
