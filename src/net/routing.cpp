#include "net/routing.hpp"

namespace eqos::net {

Router::Router(const topology::Graph& graph, const std::vector<LinkState>& links,
               const BackupManager& backups, RoutePolicy policy,
               topology::HopDistanceField* goal)
    : graph_(graph), links_(links), backups_(backups), policy_(policy), goal_(goal) {}

// The filters below are concrete lambdas handed to PathSearch's member
// templates, so each edge relaxation is a direct (inlinable) call instead of
// a std::function dispatch.

std::optional<topology::Path> Router::find_primary(topology::NodeId src,
                                                   topology::NodeId dst,
                                                   double bmin) const {
  const auto admissible = [&](topology::LinkId l) {
    return links_[l].admits_primary(bmin);
  };
  if (policy_ == RoutePolicy::kShortest)
    return search_.shortest(graph_, src, dst, admissible, bound_for(dst));
  const auto headroom = [&](topology::LinkId l) {
    return links_[l].admission_headroom();
  };
  return search_.widest_shortest(graph_, src, dst, headroom, admissible,
                                 bound_for(dst));
}

std::optional<topology::Path> Router::find_backup(
    topology::NodeId src, topology::NodeId dst, double bmin,
    const util::DynamicBitset& primary_links, bool require_disjoint) const {
  BackupQuery q;
  q.src = src;
  q.dst = dst;
  q.bmin = bmin;
  q.trigger = &primary_links;
  q.primary = &primary_links;
  q.require_disjoint = require_disjoint;
  return find_backup(q);
}

std::optional<topology::Path> Router::find_backup(const BackupQuery& q) const {
  const util::DynamicBitset& primary = *q.primary;
  const util::DynamicBitset& avoid = q.soft_avoid ? *q.soft_avoid : primary;
  const auto admissible = [&](topology::LinkId l) {
    if (links_[l].failed()) return false;
    if (q.forbidden && q.forbidden->test(l)) return false;
    if (q.require_disjoint && primary.test(l)) return false;
    const double headroom = links_[l].admission_headroom();
    // incremental_need is bounded by bmin (every scenario sum is <= the
    // cached reservation, so need <= reservation + bmin; without
    // multiplexing it IS bmin), so a link with headroom for a full bmin
    // admits without walking the scenario ledger at all.
    if (headroom >= q.bmin - LinkState::kEpsilon) return true;
    const double need = backups_.incremental_need(l, q.bmin, *q.trigger);
    return headroom >= need - LinkState::kEpsilon;
  };
  auto path = search_.min_overlap(graph_, q.src, q.dst, avoid, admissible,
                                  bound_for(q.dst));
  if (!path) return std::nullopt;
  std::size_t overlap = 0;
  for (topology::LinkId l : path->links)
    if (primary.test(l)) ++overlap;
  if (q.require_disjoint && overlap > 0) return std::nullopt;
  // A backup that shares every link with its primary dies with it — it
  // provides no protection and would only waste reservation.
  if (overlap == path->links.size()) return std::nullopt;
  return path;
}

}  // namespace eqos::net
