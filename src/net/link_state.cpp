#include "net/link_state.hpp"

namespace eqos::net {

void LinkState::commit_min(double bmin) {
  if (bmin < 0.0) throw std::invalid_argument("link: negative reservation");
  if (committed_min_ + bmin > capacity_ + kEpsilon)
    throw std::logic_error("link: minimum commitment exceeds capacity");
  committed_min_ += bmin;
}

void LinkState::release_min(double bmin) {
  if (bmin < 0.0) throw std::invalid_argument("link: negative release");
  if (bmin > committed_min_ + kEpsilon)
    throw std::logic_error("link: releasing more minimum than committed");
  committed_min_ -= bmin;
  if (committed_min_ < 0.0) committed_min_ = 0.0;
}

void LinkState::set_backup_reserved(double kbps) {
  if (kbps < 0.0) throw std::invalid_argument("link: negative backup reservation");
  backup_reserved_ = kbps;
}

void LinkState::grant_elastic(double kbps) {
  if (kbps < 0.0) throw std::invalid_argument("link: negative grant");
  if (committed_min_ + elastic_granted_ + kbps > capacity_ + kEpsilon)
    throw std::logic_error("link: elastic grant exceeds capacity");
  elastic_granted_ += kbps;
}

void LinkState::revoke_elastic(double kbps) {
  if (kbps < 0.0) throw std::invalid_argument("link: negative revoke");
  if (kbps > elastic_granted_ + kEpsilon)
    throw std::logic_error("link: revoking more elastic grant than outstanding");
  elastic_granted_ -= kbps;
  if (elastic_granted_ < 0.0) elastic_granted_ = 0.0;
}

}  // namespace eqos::net
