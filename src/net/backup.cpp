#include "net/backup.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace eqos::net {

BackupManager::BackupManager(std::size_t num_links, bool multiplexing)
    : multiplexing_(multiplexing), per_link_(num_links) {}

double BackupManager::reservation(topology::LinkId l) const {
  assert(l < per_link_.size());
  return per_link_[l].reservation;
}

double BackupManager::incremental_need(topology::LinkId l, double bmin,
                                       const util::DynamicBitset& primary_links) const {
  assert(l < per_link_.size());
  const Registry& reg = per_link_[l];
  if (!multiplexing_) return bmin;

  double need = reg.reservation;
  primary_links.for_each_set_bit([&](std::size_t f) {
    const auto it = reg.scenario_sum.find(static_cast<topology::LinkId>(f));
    const double existing = it == reg.scenario_sum.end() ? 0.0 : it->second;
    need = std::max(need, existing + bmin);
  });
  // A backup with an empty primary (degenerate) still needs its own bmin.
  need = std::max(need, bmin);
  return need - reg.reservation;
}

void BackupManager::add(topology::LinkId l, ConnectionId id, double bmin,
                        const util::DynamicBitset& primary_links) {
  assert(l < per_link_.size());
  Registry& reg = per_link_[l];
  reg.entries.push_back(Entry{id, bmin, primary_links});
  if (!multiplexing_) {
    reg.reservation += bmin;
    return;
  }
  primary_links.for_each_set_bit([&](std::size_t f) {
    const double sum =
        (reg.scenario_sum[static_cast<topology::LinkId>(f)] += bmin);
    reg.reservation = std::max(reg.reservation, sum);
  });
  reg.reservation = std::max(reg.reservation, bmin);
}

void BackupManager::remove(topology::LinkId l, ConnectionId id) {
  assert(l < per_link_.size());
  Registry& reg = per_link_[l];
  const auto it = std::find_if(reg.entries.begin(), reg.entries.end(),
                               [&](const Entry& e) { return e.id == id; });
  if (it == reg.entries.end()) return;
  const Entry removed = std::move(*it);
  reg.entries.erase(it);
  if (!multiplexing_) {
    reg.reservation -= removed.bmin;
    if (reg.reservation < 0.0) reg.reservation = 0.0;
    return;
  }
  removed.primary_links.for_each_set_bit([&](std::size_t f) {
    const auto sit = reg.scenario_sum.find(static_cast<topology::LinkId>(f));
    assert(sit != reg.scenario_sum.end());
    sit->second -= removed.bmin;
    if (sit->second <= 1e-9) reg.scenario_sum.erase(sit);
  });
  rebuild_reservation(reg);
}

void BackupManager::rebuild_reservation(Registry& reg) const {
  double worst = 0.0;
  for (const auto& [f, sum] : reg.scenario_sum) worst = std::max(worst, sum);
  for (const auto& e : reg.entries) worst = std::max(worst, e.bmin);
  reg.reservation = worst;
}

std::vector<ConnectionId> BackupManager::activated_by(topology::LinkId l,
                                                      topology::LinkId failed) const {
  assert(l < per_link_.size());
  std::vector<ConnectionId> out;
  for (const auto& e : per_link_[l].entries)
    if (e.primary_links.test(failed)) out.push_back(e.id);
  return out;
}

std::size_t BackupManager::count_on_link(topology::LinkId l) const {
  assert(l < per_link_.size());
  return per_link_[l].entries.size();
}

std::vector<ConnectionId> BackupManager::backups_on_link(topology::LinkId l) const {
  assert(l < per_link_.size());
  std::vector<ConnectionId> out;
  out.reserve(per_link_[l].entries.size());
  for (const auto& e : per_link_[l].entries) out.push_back(e.id);
  return out;
}

double BackupManager::recompute_reservation(topology::LinkId l) const {
  assert(l < per_link_.size());
  const Registry& reg = per_link_[l];
  if (!multiplexing_) {
    double sum = 0.0;
    for (const auto& e : reg.entries) sum += e.bmin;
    return sum;
  }
  double worst = 0.0;
  for (const auto& pivot : reg.entries) {
    worst = std::max(worst, pivot.bmin);
    pivot.primary_links.for_each_set_bit([&](std::size_t f) {
      double sum = 0.0;
      for (const auto& e : reg.entries)
        if (e.primary_links.test(f)) sum += e.bmin;
      worst = std::max(worst, sum);
    });
  }
  return worst;
}

}  // namespace eqos::net
