#include "net/backup.hpp"

#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

namespace eqos::net {

BackupManager::BackupManager(std::size_t num_links, bool multiplexing)
    : multiplexing_(multiplexing), per_link_(num_links) {}

double BackupManager::reservation(topology::LinkId l) const {
  assert(l < per_link_.size());
  return per_link_[l].reservation;
}

double BackupManager::incremental_need(topology::LinkId l, double bmin,
                                       const util::DynamicBitset& primary_links) const {
  assert(l < per_link_.size());
  const Registry& reg = per_link_[l];
  if (!multiplexing_) return bmin;

  // Both the primary's set bits and the ledger keys are ascending: one merge
  // pass, no hashing.  Each key is located by a binary search anchored at
  // the previous match, so a few primary bits against a long ledger cost
  // O(bits * log(keys)) instead of a full scan.  max() over doubles is
  // order-free, so the result is the same value the historical hash-map
  // walk produced.
  double need = reg.reservation;
  const topology::LinkId* keys = reg.scenario_keys.data();
  const topology::LinkId* const end = keys + reg.scenario_keys.size();
  const topology::LinkId* k = keys;
  primary_links.for_each_set_bit([&](std::size_t f) {
    const auto key = static_cast<topology::LinkId>(f);
    k = std::lower_bound(k, end, key);
    const double existing =
        (k != end && *k == key) ? reg.scenario_sums[k - keys] : 0.0;
    need = std::max(need, existing + bmin);
  });
  // A backup with an empty primary (degenerate) still needs its own bmin.
  need = std::max(need, bmin);
  return need - reg.reservation;
}

BackupManager::PrimarySet BackupManager::intern(
    ConnectionId id, const util::DynamicBitset& primary_links) {
  const auto it = interned_.find(id);
  if (it != interned_.end() && *it->second == primary_links) return it->second;
  auto fresh = std::make_shared<const util::DynamicBitset>(primary_links);
  interned_[id] = fresh;  // older sets stay alive through their entries
  return fresh;
}

void BackupManager::add(topology::LinkId l, ConnectionId id, double bmin,
                        const util::DynamicBitset& primary_links) {
  assert(l < per_link_.size());
  Registry& reg = per_link_[l];
  reg.slot_of[id] = static_cast<std::uint32_t>(reg.entries.size());
  reg.entries.push_back(Entry{id, bmin, intern(id, primary_links)});
  if (!multiplexing_) {
    reg.reservation += bmin;
    return;
  }
  bits_scratch_.clear();
  primary_links.for_each_set_bit([&](std::size_t f) {
    bits_scratch_.push_back(static_cast<topology::LinkId>(f));
  });
  scenario_add(reg, bmin);
  reg.reservation = std::max(reg.reservation, bmin);
}

void BackupManager::scenario_add(Registry& reg, double bmin) {
  auto& keys = reg.scenario_keys;
  auto& sums = reg.scenario_sums;
  const std::vector<topology::LinkId>& bits = bits_scratch_;

  // First pass: how many keys are new?
  std::size_t missing = 0;
  {
    std::size_t k = 0;
    const std::size_t n = keys.size();
    for (const topology::LinkId key : bits) {
      while (k < n && keys[k] < key) ++k;
      if (k >= n || keys[k] != key) ++missing;
    }
  }

  if (missing == 0) {
    // Update in place; every key already exists.
    std::size_t k = 0;
    for (const topology::LinkId key : bits) {
      while (keys[k] < key) ++k;
      sums[k] += bmin;
      reg.reservation = std::max(reg.reservation, sums[k]);
    }
    return;
  }

  // Backward in-place merge: grow once, then weave old entries and new keys
  // from the tails so no element shifts more than once.
  const std::size_t old_n = keys.size();
  keys.resize(old_n + missing);
  sums.resize(old_n + missing);
  std::size_t w = keys.size();  // write cursor (one past)
  std::size_t i = old_n;        // old-entry cursor (one past)
  for (std::size_t j = bits.size(); j > 0; --j) {
    const topology::LinkId key = bits[j - 1];
    while (i > 0 && keys[i - 1] > key) {
      --w;
      --i;
      keys[w] = keys[i];
      sums[w] = sums[i];
    }
    --w;
    if (i > 0 && keys[i - 1] == key) {
      --i;
      sums[w] = sums[i] + bmin;
    } else {
      sums[w] = bmin;
    }
    keys[w] = key;
    reg.reservation = std::max(reg.reservation, sums[w]);
  }
  assert(w == i);  // untouched prefix already in place
}

void BackupManager::remove(topology::LinkId l, ConnectionId id) {
  assert(l < per_link_.size());
  Registry& reg = per_link_[l];
  const auto slot_it = reg.slot_of.find(id);
  if (slot_it == reg.slot_of.end()) return;
  const std::uint32_t slot = slot_it->second;
  assert(slot < reg.entries.size() && reg.entries[slot].id == id);
  Entry removed = std::move(reg.entries[slot]);
  reg.slot_of.erase(slot_it);
  if (static_cast<std::size_t>(slot) + 1 != reg.entries.size()) {
    reg.entries[slot] = std::move(reg.entries.back());
    reg.slot_of[reg.entries[slot].id] = slot;
  }
  reg.entries.pop_back();

  if (multiplexing_) {
    bits_scratch_.clear();
    removed.primary_links->for_each_set_bit([&](std::size_t f) {
      bits_scratch_.push_back(static_cast<topology::LinkId>(f));
    });
    scenario_subtract(reg, removed.bmin);
    rebuild_reservation(reg);
  } else {
    reg.reservation -= removed.bmin;
    if (reg.reservation < 0.0) reg.reservation = 0.0;
  }

  // Drop the interned set once no registry entry references it.  (If the
  // connection re-registered with a different primary, the cached set is the
  // newer one and its use count keeps it alive independently.)
  removed.primary_links.reset();
  const auto cached = interned_.find(id);
  if (cached != interned_.end() && cached->second.use_count() == 1)
    interned_.erase(cached);
}

void BackupManager::scenario_subtract(Registry& reg, double bmin) {
  auto& keys = reg.scenario_keys;
  auto& sums = reg.scenario_sums;
  const std::vector<topology::LinkId>& bits = bits_scratch_;

  std::size_t w = 0;
  std::size_t j = 0;
  std::size_t matched = 0;
  for (std::size_t r = 0; r < keys.size(); ++r) {
    while (j < bits.size() && bits[j] < keys[r]) ++j;
    double sum = sums[r];
    bool hit = false;
    if (j < bits.size() && bits[j] == keys[r]) {
      sum -= bmin;
      hit = true;
      ++j;
      ++matched;
    }
    if (hit && sum <= 1e-9) continue;  // scenario emptied: drop the key
    keys[w] = keys[r];
    sums[w] = sum;
    ++w;
  }
  keys.resize(w);
  sums.resize(w);
  assert(matched == bits.size());  // every primary link had a ledger key
  (void)matched;
}

void BackupManager::rebuild_reservation(Registry& reg) const {
  double worst = 0.0;
  for (const double sum : reg.scenario_sums) worst = std::max(worst, sum);
  for (const auto& e : reg.entries) worst = std::max(worst, e.bmin);
  reg.reservation = worst;
}

std::vector<ConnectionId> BackupManager::activated_by(topology::LinkId l,
                                                      topology::LinkId failed) const {
  assert(l < per_link_.size());
  std::vector<ConnectionId> out;
  for (const auto& e : per_link_[l].entries)
    if (e.primary_links->test(failed)) out.push_back(e.id);
  return out;
}

std::size_t BackupManager::count_on_link(topology::LinkId l) const {
  assert(l < per_link_.size());
  return per_link_[l].entries.size();
}

std::vector<ConnectionId> BackupManager::backups_on_link(topology::LinkId l) const {
  assert(l < per_link_.size());
  std::vector<ConnectionId> out;
  out.reserve(per_link_[l].entries.size());
  for (const auto& e : per_link_[l].entries) out.push_back(e.id);
  return out;
}

double BackupManager::recompute_reservation(topology::LinkId l) const {
  assert(l < per_link_.size());
  const Registry& reg = per_link_[l];
  if (!multiplexing_) {
    double sum = 0.0;
    for (const auto& e : reg.entries) sum += e.bmin;
    return sum;
  }
  double worst = 0.0;
  for (const auto& pivot : reg.entries) {
    worst = std::max(worst, pivot.bmin);
    pivot.primary_links->for_each_set_bit([&](std::size_t f) {
      double sum = 0.0;
      for (const auto& e : reg.entries)
        if (e.primary_links->test(f)) sum += e.bmin;
      worst = std::max(worst, sum);
    });
  }
  return worst;
}

void BackupManager::save_state(state::Buffer& out) const {
  out.put_bool(multiplexing_);
  out.put_u64(per_link_.size());
  // Distinct primary sets in first-seen (link, entry) order; entries and the
  // interned cache reference them by index so pointer sharing round-trips.
  std::unordered_map<const util::DynamicBitset*, std::uint64_t> index_of;
  std::vector<const util::DynamicBitset*> sets;
  for (const Registry& reg : per_link_) {
    for (const Entry& e : reg.entries) {
      if (index_of.emplace(e.primary_links.get(), sets.size()).second)
        sets.push_back(e.primary_links.get());
    }
  }
  out.put_u64(sets.size());
  for (const util::DynamicBitset* s : sets) {
    out.put_u64(s->size());
    std::vector<std::uint64_t> bits;
    s->for_each_set_bit([&](std::size_t b) { bits.push_back(b); });
    out.put_u64_vec(bits);
  }
  for (const Registry& reg : per_link_) {
    out.put_u64(reg.entries.size());
    for (const Entry& e : reg.entries) {
      out.put_u64(e.id);
      out.put_f64(e.bmin);
      out.put_u64(index_of.at(e.primary_links.get()));
    }
    out.put_vec(reg.scenario_keys,
                [&out](topology::LinkId k) { out.put_u64(k); });
    out.put_f64_vec(reg.scenario_sums);
    out.put_f64(reg.reservation);
  }
  // The interned cache (latest set per connection), sorted by id so the
  // serialized bytes do not depend on hash iteration order.
  std::vector<std::pair<ConnectionId, std::uint64_t>> cache;
  cache.reserve(interned_.size());
  for (const auto& [id, set] : interned_)
    cache.emplace_back(id, index_of.at(set.get()));
  std::sort(cache.begin(), cache.end());
  out.put_u64(cache.size());
  for (const auto& [id, idx] : cache) {
    out.put_u64(id);
    out.put_u64(idx);
  }
}

void BackupManager::load_state(state::Buffer& in) {
  if (in.get_bool() != multiplexing_)
    throw state::CorruptError(
        "checkpoint backup-multiplexing mode differs from this configuration");
  if (in.get_u64() != per_link_.size())
    throw state::CorruptError("checkpoint backup registry link count mismatch");
  const std::size_t num_sets = in.get_count(8);
  std::vector<PrimarySet> sets;
  sets.reserve(num_sets);
  for (std::size_t i = 0; i < num_sets; ++i) {
    const std::size_t bits = static_cast<std::size_t>(in.get_u64());
    util::DynamicBitset set(bits);
    for (std::uint64_t b : in.get_u64_vec()) {
      if (b >= bits)
        throw state::CorruptError("checkpoint backup primary-set bit out of range");
      set.set(static_cast<std::size_t>(b));
    }
    sets.push_back(std::make_shared<const util::DynamicBitset>(std::move(set)));
  }
  for (Registry& reg : per_link_) {
    reg = Registry{};
    const std::size_t n = in.get_count(8);
    reg.entries.reserve(n);
    for (std::size_t s = 0; s < n; ++s) {
      Entry e;
      e.id = in.get_u64();
      e.bmin = in.get_f64();
      const std::uint64_t idx = in.get_u64();
      if (idx >= sets.size())
        throw state::CorruptError("checkpoint backup entry set index out of range");
      e.primary_links = sets[idx];
      if (!reg.slot_of.emplace(e.id, static_cast<std::uint32_t>(s)).second)
        throw state::CorruptError("checkpoint backup registry has duplicate entry");
      reg.entries.push_back(std::move(e));
    }
    const std::size_t nk = in.get_count(8);
    reg.scenario_keys.reserve(nk);
    for (std::size_t k = 0; k < nk; ++k)
      reg.scenario_keys.push_back(static_cast<topology::LinkId>(in.get_u64()));
    reg.scenario_sums = in.get_f64_vec();
    if (reg.scenario_sums.size() != reg.scenario_keys.size())
      throw state::CorruptError("checkpoint backup scenario ledger length mismatch");
    reg.reservation = in.get_f64();
  }
  interned_.clear();
  const std::size_t nc = in.get_count(16);
  for (std::size_t i = 0; i < nc; ++i) {
    const ConnectionId id = in.get_u64();
    const std::uint64_t idx = in.get_u64();
    if (idx >= sets.size())
      throw state::CorruptError("checkpoint backup interned set index out of range");
    interned_[id] = sets[idx];
  }
}

void BackupManager::audit() const {
  try {
    audit_impl();
  } catch (const std::logic_error& e) {
    throw std::logic_error(obs::annotate_audit_failure(e.what()));
  }
}

void BackupManager::audit_impl() const {
  for (std::size_t l = 0; l < per_link_.size(); ++l) {
    const Registry& reg = per_link_[l];
    if (reg.slot_of.size() != reg.entries.size())
      throw std::logic_error("backup audit: slot map size mismatch on link " +
                             std::to_string(l));
    for (std::size_t s = 0; s < reg.entries.size(); ++s) {
      const Entry& e = reg.entries[s];
      if (!e.primary_links)
        throw std::logic_error("backup audit: null primary set on link " +
                               std::to_string(l));
      const auto it = reg.slot_of.find(e.id);
      if (it == reg.slot_of.end() || it->second != s)
        throw std::logic_error("backup audit: slot cache mismatch on link " +
                               std::to_string(l));
    }
    if (reg.scenario_keys.size() != reg.scenario_sums.size())
      throw std::logic_error("backup audit: ledger length mismatch on link " +
                             std::to_string(l));
    if (!std::is_sorted(reg.scenario_keys.begin(), reg.scenario_keys.end()) ||
        std::adjacent_find(reg.scenario_keys.begin(), reg.scenario_keys.end()) !=
            reg.scenario_keys.end())
      throw std::logic_error("backup audit: ledger keys not strictly sorted on link " +
                             std::to_string(l));
    // The cached reservation must cover the worst single-failure scenario,
    // and no live ledger row may carry a non-positive demand sum.
    double worst = 0.0;
    for (double s : reg.scenario_sums) {
      if (!(s > 0.0))
        throw std::logic_error("backup audit: non-positive scenario sum on link " +
                               std::to_string(l));
      if (s > worst) worst = s;
    }
    if (reg.reservation < worst - 1e-9)
      throw std::logic_error("backup audit: reservation below worst scenario on link " +
                             std::to_string(l));
  }
  for (const auto& [id, set] : interned_) {
    if (!set)
      throw std::logic_error("backup audit: null interned set for connection " +
                             std::to_string(id));
    if (set.use_count() <= 1)
      throw std::logic_error("backup audit: orphaned interned set for connection " +
                             std::to_string(id));
  }
}

}  // namespace eqos::net
