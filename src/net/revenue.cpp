#include "net/revenue.hpp"

#include <stdexcept>

namespace eqos::net {

void RevenueModel::validate() const {
  if (base_rate_per_kbps < 0.0 || elastic_rate_per_kbps < 0.0)
    throw std::invalid_argument("revenue: rates must be non-negative");
}

RevenueReport assess_revenue(const Network& network, const RevenueModel& model) {
  model.validate();
  RevenueReport report;
  report.connections = network.num_active();
  for (ConnectionId id : network.active_ids()) {
    const DrConnection& c = network.connection(id);
    report.base += c.qos.bmin_kbps * model.base_rate_per_kbps;
    report.elastic += c.extra_kbps() * model.elastic_rate_per_kbps;
    report.client_utility += c.qos.utility * c.extra_kbps();
  }
  report.total = report.base + report.elastic;
  return report;
}

}  // namespace eqos::net
