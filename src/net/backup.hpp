// Backup-channel reservation with multiplexing (overbooking).
//
// Backups are passive: they consume no bandwidth until a failure activates
// them, so backups whose primaries can never fail together (no shared link)
// may share one reservation (Section 2.1.2).  Under the single-link-failure
// model, the reservation a link l must hold is
//
//     R_l = max over links f of  sum of bmin over backups on l whose
//                                 primary traverses f,
//
// i.e. the worst single failure scenario.  With multiplexing disabled, R_l
// degenerates to the plain sum of bmin over all backups on l (the paper's
// baseline for how expensive dependability is without overbooking).
//
// The manager caches, per link, the per-failure-scenario sums and the
// resulting reservation so that `incremental_need` — evaluated for every
// candidate link during backup route search — costs O(primary path length).
#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "topology/graph.hpp"
#include "util/bitset.hpp"

namespace eqos::net {

/// Tracks, per link, which backups are parked there and what reservation
/// they collectively need.
class BackupManager {
 public:
  /// `num_links` sizes the per-link registries; `multiplexing` selects
  /// scenario-max (true) or plain-sum (false) reservations.
  BackupManager(std::size_t num_links, bool multiplexing);

  /// Reservation R_l currently required on link `l` (cached).
  [[nodiscard]] double reservation(topology::LinkId l) const;

  /// Additional reservation link `l` would need to also host a backup of
  /// `bmin` whose primary traverses `primary_links`.
  [[nodiscard]] double incremental_need(topology::LinkId l, double bmin,
                                        const util::DynamicBitset& primary_links) const;

  /// Registers connection `id`'s backup on link `l`.
  void add(topology::LinkId l, ConnectionId id, double bmin,
           const util::DynamicBitset& primary_links);

  /// Removes connection `id`'s backup from link `l` (no-op if absent).
  void remove(topology::LinkId l, ConnectionId id);

  /// Ids of backups on link `l` whose primary traverses `failed`.
  [[nodiscard]] std::vector<ConnectionId> activated_by(topology::LinkId l,
                                                       topology::LinkId failed) const;

  /// Number of backups parked on link `l`.
  [[nodiscard]] std::size_t count_on_link(topology::LinkId l) const;

  /// All connection ids with a backup on link `l`.
  [[nodiscard]] std::vector<ConnectionId> backups_on_link(topology::LinkId l) const;

  [[nodiscard]] bool multiplexing() const noexcept { return multiplexing_; }

  /// Recomputes link `l`'s reservation from scratch and checks it against
  /// the cache (tests); returns the from-scratch value.
  [[nodiscard]] double recompute_reservation(topology::LinkId l) const;

 private:
  struct Entry {
    ConnectionId id;
    double bmin;
    util::DynamicBitset primary_links;
  };

  struct Registry {
    std::vector<Entry> entries;
    /// scenario_sum[f] = sum of bmin over entries whose primary crosses f.
    std::unordered_map<topology::LinkId, double> scenario_sum;
    double reservation = 0.0;
  };

  void rebuild_reservation(Registry& reg) const;

  bool multiplexing_;
  std::vector<Registry> per_link_;
};

}  // namespace eqos::net
