// Backup-channel reservation with multiplexing (overbooking).
//
// Backups are passive: they consume no bandwidth until a failure activates
// them, so backups whose primaries can never fail together (no shared link)
// may share one reservation (Section 2.1.2).  Under the single-link-failure
// model, the reservation a link l must hold is
//
//     R_l = max over links f of  sum of bmin over backups on l whose
//                                 primary traverses f,
//
// i.e. the worst single failure scenario.  With multiplexing disabled, R_l
// degenerates to the plain sum of bmin over all backups on l (the paper's
// baseline for how expensive dependability is without overbooking).
//
// The manager caches, per link, the per-failure-scenario sums and the
// resulting reservation so that `incremental_need` — evaluated for every
// candidate link during backup route search — costs O(primary path length).
// The scenario ledger is a sparse flat pair of sorted vectors (keys, sums):
// `incremental_need` walks it and the primary's set bits (both ascending) in
// one merge pass, so the per-candidate-link cost is pointer chasing over two
// contiguous arrays with no hashing.  Each connection's primary link set is
// interned once, so registering a backup on k links stores k shared
// references to one bitset instead of k copies.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/connection.hpp"
#include "state/serial.hpp"
#include "topology/graph.hpp"
#include "util/bitset.hpp"

namespace eqos::net {

/// Tracks, per link, which backups are parked there and what reservation
/// they collectively need.
class BackupManager {
 public:
  /// `num_links` sizes the per-link registries; `multiplexing` selects
  /// scenario-max (true) or plain-sum (false) reservations.
  BackupManager(std::size_t num_links, bool multiplexing);

  /// Reservation R_l currently required on link `l` (cached).
  [[nodiscard]] double reservation(topology::LinkId l) const;

  /// Additional reservation link `l` would need to also host a backup of
  /// `bmin` whose primary traverses `primary_links`.
  [[nodiscard]] double incremental_need(topology::LinkId l, double bmin,
                                        const util::DynamicBitset& primary_links) const;

  /// Registers connection `id`'s backup on link `l`.
  void add(topology::LinkId l, ConnectionId id, double bmin,
           const util::DynamicBitset& primary_links);

  /// Removes connection `id`'s backup from link `l` (no-op if absent).
  /// Uses the cached slot for an O(1) swap-erase; registry order is not
  /// meaningful (every caller that needs determinism sorts the ids).
  void remove(topology::LinkId l, ConnectionId id);

  /// Ids of backups on link `l` whose primary traverses `failed`.
  [[nodiscard]] std::vector<ConnectionId> activated_by(topology::LinkId l,
                                                       topology::LinkId failed) const;

  /// Number of backups parked on link `l`.
  [[nodiscard]] std::size_t count_on_link(topology::LinkId l) const;

  /// All connection ids with a backup on link `l`.
  [[nodiscard]] std::vector<ConnectionId> backups_on_link(topology::LinkId l) const;

  [[nodiscard]] bool multiplexing() const noexcept { return multiplexing_; }

  /// Recomputes link `l`'s reservation from scratch and checks it against
  /// the cache (tests); returns the from-scratch value.
  [[nodiscard]] double recompute_reservation(topology::LinkId l) const;

  /// Verifies internal bookkeeping: slot maps round-trip to entries, the
  /// scenario ledger is strictly sorted with matching key/sum lengths, and
  /// interned primary sets match what entries reference.  Throws
  /// std::logic_error on any mismatch (wired into Network::audit and
  /// fault::audit_network).
  void audit() const;

  /// Number of distinct interned primary link sets (test observability).
  [[nodiscard]] std::size_t interned_sets() const noexcept { return interned_.size(); }

  /// Serializes the flat ledgers exactly: per-link entries in registry
  /// order, the scenario key/sum vectors (FP accumulations survive
  /// bit-for-bit), reservations, and the interning structure (distinct
  /// primary sets are stored once and entries reference them by index, so
  /// restored sharing — and audit's use-count checks — match the original).
  void save_state(state::Buffer& out) const;

  /// Restores into a freshly constructed manager with the same link count
  /// and multiplexing mode; throws state::CorruptError otherwise or when
  /// the payload is structurally inconsistent.
  void load_state(state::Buffer& in);

 private:
  /// The audit body; audit() wraps it to attach a flight-recorder dump to
  /// the violation message.
  void audit_impl() const;

  using PrimarySet = std::shared_ptr<const util::DynamicBitset>;

  struct Entry {
    ConnectionId id;
    double bmin;
    PrimarySet primary_links;  // interned; shared across this backup's links
  };

  struct Registry {
    std::vector<Entry> entries;
    /// slot_of[id] = index of id's entry in `entries` (swap-erase cache).
    std::unordered_map<ConnectionId, std::uint32_t> slot_of;
    /// Sparse flat scenario ledger: scenario_sums[i] = sum of bmin over
    /// entries whose primary crosses scenario_keys[i]; keys strictly
    /// ascending, vectors parallel.
    std::vector<topology::LinkId> scenario_keys;
    std::vector<double> scenario_sums;
    double reservation = 0.0;
  };

  /// Returns a shared copy of `primary_links`, reusing the cached set when
  /// the connection registers the same primary on multiple backup links.
  [[nodiscard]] PrimarySet intern(ConnectionId id,
                                  const util::DynamicBitset& primary_links);
  /// Folds `bmin` into the scenario sums for every key in `bits_scratch_`.
  void scenario_add(Registry& reg, double bmin);
  /// Subtracts `bmin` from the scenario sums for every key in
  /// `bits_scratch_`, dropping keys whose sum reaches zero.
  void scenario_subtract(Registry& reg, double bmin);
  void rebuild_reservation(Registry& reg) const;

  bool multiplexing_;
  std::vector<Registry> per_link_;
  /// Latest interned primary set per connection; purged when no registry
  /// entry references it any more.
  std::unordered_map<ConnectionId, PrimarySet> interned_;
  std::vector<topology::LinkId> bits_scratch_;  // set bits of one primary set
};

}  // namespace eqos::net
