// The dependable real-time network (Section 3.1's operation, executable).
//
// Owns the topology, per-link ledgers, the backup multiplexing registry, and
// all active DR-connections, and implements the three events the paper's
// Markov chain models:
//
//  * request_connection — admit a primary on its fewest-hop/widest route,
//    reserve a (maximally) link-disjoint multiplexed backup, retreat every
//    directly-chained channel to its minimum, then redistribute spare
//    capacity by utility (the newcomer included).  Indirectly-chained
//    channels may gain from capacity the retreats freed elsewhere.
//  * terminate_connection — release the connection; channels sharing its
//    links may gain.
//  * fail_link / repair_link — activate the backups of every primary on the
//    failed link (switchover at bmin), retreat channels chained to the
//    activated paths, re-establish replacement backups, and redistribute.
//
// All operations are deterministic and return structured reports
// (net/events.hpp) from which sim::TransitionRecorder estimates the model's
// parameters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/backup.hpp"
#include "net/connection.hpp"
#include "net/events.hpp"
#include "net/link_state.hpp"
#include "net/qos.hpp"
#include "net/routing.hpp"
#include "obs/metrics.hpp"
#include "state/serial.hpp"
#include "topology/graph.hpp"
#include "topology/partition.hpp"

namespace eqos::net {

/// What happens to a primary victim whose backup cannot seamlessly take
/// over (no backup, backup sharing the failed link, or no activation
/// headroom) — the situation the paper's single-link-failure model never
/// reaches but second failures and SRLG bursts produce routinely.
enum class SecondFailurePolicy : std::uint8_t {
  /// Paper baseline: the connection is dropped (dependability violation).
  kDrop,
  /// Graceful degradation: attempt (a) immediate re-establishment of a
  /// fresh link-disjoint primary/backup pair, then (b) a degraded
  /// single-path re-establishment at bmin flagged unprotected (a backup is
  /// retried on the next repair), and (c) drop only when both fail.  Every
  /// such victim still counts as an `unprotected_victims` disruption.
  kReestablish,
};

/// How backup capacity is provisioned per DR-connection.
enum class BackupScheme : std::uint8_t {
  /// Paper baseline: one full-span (maximally) link-disjoint backup.
  kSingle,
  /// Two mutually link-disjoint full-span backups with parallel
  /// cross-connection activation (Kumar et al., arXiv:2003.02503): both
  /// channels are pre-cross-connected, so switchover latency is one
  /// constant XC actuation instead of per-hop signalling, and a failure
  /// that kills the primary *and* the first backup still leaves a path.
  kDualDisjoint,
  /// One backup per primary sub-path of at most `segment_span_hops` hops:
  /// a failure reroutes only the covered segment (short detours, fast
  /// local recovery), at the cost of per-segment coverage gaps when no
  /// disjoint detour exists.
  kSegment,
};

/// How shared-risk link groups constrain backup placement (the admission
/// -time, worst-case-aware objective of Liang/Lee/Modiano,
/// arXiv:1603.03102).  Groups are supplied via Network::set_risk_groups.
enum class SrlgPolicy : std::uint8_t {
  kIgnore,   ///< paper baseline: link-disjointness only
  /// Soft: the backup search also minimizes overlap with links sharing an
  /// SRLG with the primary (ties broken as before).
  kAvoid,
  /// Hard: links sharing an SRLG with the primary (or with a sibling
  /// channel) are inadmissible for backups.
  kRequire,
};

/// Static configuration of a Network.
struct NetworkConfig {
  double link_capacity_kbps = 10'000.0;  ///< the paper's 10 Mb/s links
  AdaptationScheme adaptation = AdaptationScheme::kCoefficient;
  bool backup_multiplexing = true;
  /// Reject connections for which no backup route exists at all.  When
  /// false, such connections are admitted unprotected (and retried on
  /// repair events).
  bool require_backup = true;
  /// Insist on fully link-disjoint backups.  When false (the default,
  /// matching footnote 1), a maximally link-disjoint backup is accepted.
  bool require_full_disjoint = false;
  /// Primary route selection (see RoutePolicy).
  RoutePolicy route_policy = RoutePolicy::kWidestShortest;
  /// When the paper's sequential establishment (shortest primary, then a
  /// disjoint backup in what remains) finds no backup, retry with a joint
  /// Suurballe/Bhandari disjoint-pair computation before rejecting.  Rescues
  /// requests on "trap" topologies where a disjoint pair exists but the
  /// shortest primary blocks it.  Off by default (paper fidelity).
  bool joint_disjoint_fallback = false;
  /// Fate of primary victims without a usable backup (see
  /// SecondFailurePolicy).  kDrop matches the paper's single-failure model;
  /// kReestablish is the graceful multi-failure policy.
  SecondFailurePolicy second_failure_policy = SecondFailurePolicy::kDrop;
  /// Backup provisioning scheme (see BackupScheme).
  BackupScheme backup_scheme = BackupScheme::kSingle;
  /// Maximum primary hops covered by one segment backup (kSegment only).
  std::size_t segment_span_hops = 3;
  /// SRLG-awareness of backup placement (see SrlgPolicy).
  SrlgPolicy srlg_policy = SrlgPolicy::kIgnore;
  // -- Recovery-time model (simulated time units) ---------------------------
  // Time-to-reroute for a victim = failure detection/notification, plus the
  // switchover itself: per-hop cross-connect signalling along the activated
  // channel (kSingle/kSegment), one parallel cross-connect actuation
  // (kDualDisjoint, whose channels are pre-cross-connected), or per-hop
  // end-to-end setup signalling for a kReestablish rescue.
  double recovery_detect_time = 0.5;
  double recovery_xc_time_per_hop = 0.2;
  double recovery_setup_time_per_hop = 1.0;
  // -- Simulated recovery control plane -------------------------------------
  // When enabled, failures no longer rescue victims synchronously inside
  // fail_link: each victim enters a recovering state and the sim-layer
  // control plane (sim::RecoveryPlane) drives detection, hop-by-hop lossy
  // signaling with retry/timeout/backoff, and deadline enforcement as
  // scheduled events.  Time-to-reroute then becomes measured simulated
  // elapsed time instead of the analytic constant above.  Off by default:
  // the disabled path is byte-identical to the legacy synchronous recovery.
  bool recovery_protocol = false;
  /// Failure-detection delay is drawn uniformly from [detect_min, detect_max]
  /// per victim (imperfect detection).  The *minimum* bounds shard lookahead.
  double recovery_detect_min = 0.1;
  double recovery_detect_max = 0.5;
  /// Probability an activation/setup signaling message is lost in transit
  /// (messages over failed links are always lost).
  double recovery_signal_loss_prob = 0.0;
  /// Retransmission timeout for a lost signaling message; each retry waits
  /// timeout * backoff^attempt before giving up on the current channel.
  double recovery_signal_timeout = 0.5;
  double recovery_signal_backoff = 2.0;
  /// Retries per hop before the in-flight activation is abandoned and the
  /// next covering channel is tried (or the victim is dropped).
  std::size_t recovery_retry_cap = 3;
  /// Network-default recovery deadline (see ElasticQosSpec::recovery_deadline).
  double recovery_deadline = 8.0;
};

/// The executable network model.
class Network {
 public:
  /// Takes ownership of the topology.  All links get the configured
  /// capacity (the paper assumes homogeneous links; use set_link_capacity
  /// to relax).
  Network(topology::Graph graph, NetworkConfig config);

  // ---- Events -------------------------------------------------------------

  /// Attempts to establish a DR-connection.  See ArrivalOutcome.
  ArrivalOutcome request_connection(topology::NodeId src, topology::NodeId dst,
                                    const ElasticQosSpec& qos);

  /// Tears down an active connection.  Throws std::invalid_argument for an
  /// unknown id.
  TerminationReport terminate_connection(ConnectionId id);

  /// Injects a link failure (idempotent for an already-failed link).
  FailureReport fail_link(topology::LinkId link);

  /// Repairs a failed link and retries backup establishment for unprotected
  /// connections.  Returns how many backups were re-established.
  std::size_t repair_link(topology::LinkId link);

  /// Fails a node: every incident link fails (in ascending link order).
  /// Connections terminating at the node lose all routes and drop; transit
  /// connections switch to backups where possible.  Returns the aggregated
  /// per-link reports.  The paper evaluates link failures only but speaks of
  /// "component failures" throughout; node failures complete that model.
  std::vector<FailureReport> fail_node(topology::NodeId node);

  /// Repairs every incident link of a failed node.  Returns backups
  /// re-established.
  std::size_t repair_node(topology::NodeId node);

  // ---- Simulated recovery control plane -----------------------------------
  // The event-driven recovery protocol (NetworkConfig::recovery_protocol)
  // splits what fail_link used to do synchronously into calls the sim-layer
  // plane makes as its scheduled events fire.  With the protocol disabled
  // these are never called and fail_link behaves exactly as before.

  /// True iff `id` is active and parked in the kRecovering state.  Never
  /// throws: a terminated/dropped id simply reads false (the plane's lazy
  /// event-cancellation test).
  [[nodiscard]] bool is_recovering(ConnectionId id) const;

  /// Pops the first covering channel of a recovering victim that is alive,
  /// spliceable, and yields a live simple path, consuming (and counting in
  /// `consumed`) covering channels that fail those tests — the same walk
  /// fail_link performs synchronously with the protocol off, minus the
  /// headroom test, which waits until complete_recovery because the ledger
  /// keeps moving while signaling is in flight.  The returned channel is
  /// removed from the backup set (its reservation is released; activation
  /// signaling is now the only claim on it).  nullopt when no covering
  /// channel remains.
  std::optional<topology::Path> claim_recovery_channel(ConnectionId id,
                                                       std::size_t& consumed);

  /// How an activation commit attempt ended.
  enum class RecoveryCommit : std::uint8_t {
    kCommitted,    ///< service restored on the spliced primary
    kChannelDead,  ///< the patch died or lost headroom mid-signaling: fall
                   ///< back to the next covering channel
  };

  /// Commits a claimed channel after its activation signaling completed:
  /// re-validates the spliced primary (alive, simple, bmin headroom on every
  /// link — a second failure or ledger churn may have raced the in-flight
  /// signaling), switches over, records the measured time-to-reroute `ttr`
  /// and service-interruption `blackout`, retriggers surviving siblings,
  /// retreats chained channels and redistributes.  `via_fallback` marks a
  /// victim that burned at least one covering channel before this one (the
  /// backup-set survival accounting).
  RecoveryCommit complete_recovery(ConnectionId id, const topology::Path& patch,
                                   double ttr, double blackout, bool via_fallback);

  /// Ends a recovery by re-establishment (SecondFailurePolicy::kReestablish)
  /// after its setup signaling completed: fresh pair, then degraded single
  /// path.  False when no route exists — the caller must drop_recovering.
  bool complete_recovery_rescue(ConnectionId id, double ttr, double blackout);

  /// Drops a recovering victim.  `deadline_missed` charges the loss to the
  /// new deadline_miss cause; otherwise the classic precedence applies
  /// (double_hit > backup_hit_while_active > primary_hit) using the flags
  /// captured at severance.  `attempted_reestablish` additionally counts a
  /// failed rescue attempt.
  void drop_recovering(ConnectionId id, bool double_hit, bool was_active,
                       bool deadline_missed, bool attempted_reestablish,
                       double blackout);

  /// Operator action: revokes every elastic grant network-wide *without*
  /// redistributing (a control-plane freeze / reprovisioning reset).  Each
  /// channel sits at its minimum until a later arrival, termination, or
  /// failure touches its links — exactly the recovery dynamics the Markov
  /// chain's upward transitions model, which makes this the natural
  /// starting point for transient-analysis experiments.  Returns the number
  /// of channels that held grants.
  std::size_t preempt_all_elastic();

  /// Declares the shared-risk link groups the SrlgPolicy consults (e.g. the
  /// groups of a fault::FaultScenario).  Replaces any previous declaration;
  /// affects only subsequently placed backups.  Each group is a set of link
  /// ids; a link may belong to several groups.
  void set_risk_groups(const std::vector<std::vector<topology::LinkId>>& groups);

  // ---- Sharding -----------------------------------------------------------

  /// Declares the shard layout a sharded simulation runs this network
  /// under.  Transient bookkeeping only — never serialized and never part
  /// of a reported metric, so declaring it cannot perturb results — used to
  /// attribute each link to its owning shard and to count cross-shard route
  /// handoffs at primary (re)establishment.  A single-shard partition, or
  /// one that does not cover the graph, clears the layout.
  void set_partition(const topology::Partition& partition);
  /// Shard owning `link` under the declared partition (0 when unsharded).
  [[nodiscard]] std::uint32_t link_shard(topology::LinkId link) const;
  /// Consecutive primary-route link pairs spanning two shards, accumulated
  /// whenever a primary is (re)placed: arrivals, rescues, and backup
  /// switchovers.  Each is a route handoff between shard-local ledgers.
  [[nodiscard]] std::uint64_t cross_shard_handoffs() const noexcept {
    return cross_shard_handoffs_;
  }

  // ---- Observers ----------------------------------------------------------

  [[nodiscard]] const topology::Graph& graph() const noexcept { return graph_; }
  [[nodiscard]] const NetworkConfig& config() const noexcept { return config_; }
  [[nodiscard]] const LinkState& link_state(topology::LinkId l) const;
  [[nodiscard]] const BackupManager& backups() const noexcept { return backups_; }
  [[nodiscard]] const NetworkStats& stats() const noexcept { return stats_; }

  [[nodiscard]] std::size_t num_active() const noexcept { return active_ids_.size(); }
  /// Active connection ids in deterministic (insertion-swap) order.
  [[nodiscard]] const std::vector<ConnectionId>& active_ids() const noexcept {
    return active_ids_;
  }
  /// Looks up an active connection.  Throws std::invalid_argument when
  /// unknown.
  [[nodiscard]] const DrConnection& connection(ConnectionId id) const;
  [[nodiscard]] bool is_active(ConnectionId id) const;

  /// Mean reserved bandwidth over active primaries (Kbit/s); 0 if none.
  [[nodiscard]] double mean_reserved_kbps() const;
  /// Mean primary hop count over active connections; 0 if none.
  [[nodiscard]] double mean_primary_hops() const;
  /// Fraction of active connections holding a backup.
  [[nodiscard]] double protected_fraction() const;
  /// Per-group link bitsets declared via set_risk_groups (empty when none).
  [[nodiscard]] const std::vector<util::DynamicBitset>& risk_groups() const noexcept {
    return risk_groups_;
  }
  /// True iff the scheme considers `c` fully provisioned (kSingle: one
  /// channel; kDualDisjoint: two; kSegment: every primary link covered by
  /// some channel's trigger set).
  [[nodiscard]] bool fully_protected(const DrConnection& c) const;

  /// Full invariant audit: capacity conservation on every link ledger,
  /// primary/backup link-disjointness per policy, BackupManager
  /// reservation-cache consistency against a from-scratch recomputation,
  /// elastic-share bounds (bmin <= b <= bmax), no path over a failed link,
  /// and registry round-trips.  Throws std::logic_error with a description
  /// on the first violation.  fault::InvariantAuditor wraps this (plus an
  /// external ledger recomputation) for per-event auditing.
  void audit() const;

  /// Back-compat alias for audit().
  void validate_invariants() const { audit(); }

  // ---- Checkpointing --------------------------------------------------------

  /// Serializes the evolving state: link ledgers, every active connection
  /// (paths, QoS, elastic grants, registry slots) in active_ids_ order —
  /// the order every floating-point aggregate iterates, so restored sums
  /// accumulate identically — the backup manager's ledgers, the stats
  /// counters, and the id allocator.  Caches (hop-distance field, link
  /// bitsets, index maps) are rebuilt on load, not stored.
  void save_state(state::Buffer& out) const;

  /// Restores into a freshly constructed Network over the same graph and
  /// config.  Throws state::CorruptError when the checkpoint is
  /// structurally inconsistent with this network.  Runs audit() before
  /// returning — a restored network that fails its invariants never goes
  /// live.
  void load_state(state::Buffer& in);

 private:
  /// Pre-resolved global-registry metric handles (looked up once at
  /// construction).  Every update is a no-op guarded by a single relaxed
  /// load while obs::metrics_enabled() is false, so carrying these in the
  /// event paths costs nothing with observability off.
  struct ObsHandles {
    obs::Counter arrivals_admitted;
    obs::Counter arrivals_rejected;
    obs::Counter terminations;
    obs::Counter retreats;
    obs::Counter redistributes;
    obs::Counter backups_activated;
    obs::Counter backups_lost;
    obs::Counter reroutes;
    obs::Counter drops;
    obs::Counter link_failures;
    obs::Counter link_repairs;
    obs::Gauge active_connections;
    obs::Histogram primary_hops;
    obs::Histogram redistribute_gainable;
    /// Victims that survived because a sibling beyond the first covering
    /// channel took over (multi-backup schemes only).
    obs::Counter backup_set_survivals;
    /// Per-scheme loss/activation split: "net.drops.<scheme>" /
    /// "net.activations.<scheme>" where <scheme> is single|dual|segment.
    obs::Counter scheme_drops;
    obs::Counter scheme_activations;
    /// Activation latency (time-to-reroute) samples, per victim.
    obs::Histogram time_to_reroute;
    /// Service-interruption samples (simulated recovery control plane only):
    /// failure instant to restored service, or to the drop.
    obs::Histogram blackout_time;
  };

  /// The audit body; audit() wraps it to attach a flight-recorder dump to
  /// the violation message.
  void audit_impl() const;

  // Chaining classification sets for one event path set.
  struct ChainSets {
    std::vector<ConnectionId> direct;
    std::vector<ConnectionId> indirect;
  };

  [[nodiscard]] DrConnection& mutable_connection(ConnectionId id);
  /// Arena access for an id known to be active (internal call sites only;
  /// slot_of_.at throws std::out_of_range on a violated precondition).
  /// Goes through the cached record pointer, not arena_[slot]: one hash
  /// probe plus a single dependent load, same as the old per-id node map.
  [[nodiscard]] const DrConnection& conn_at(ConnectionId id) const {
    return *slot_of_.at(id).ptr;
  }
  [[nodiscard]] DrConnection& conn_at(ConnectionId id) {
    return *slot_of_.at(id).ptr;
  }
  /// Moves `c` into a (possibly recycled) arena slot, fills its runtime
  /// slot/position fields and SoA row, and appends it to the active
  /// mirrors.  Returns the arena record.
  DrConnection& arena_insert(DrConnection&& c);
  /// Classifies every active channel (except `exclude`) against the event
  /// path with link list `event_path_links` / bitset `event_links`.  Direct
  /// members come straight from the per-link primary registry (only the
  /// event's links are inspected); indirect members still need one pass
  /// over the active set.  Returns a reference to reused scratch valid
  /// until the next classify_against call.
  [[nodiscard]] const ChainSets& classify_against(
      const std::vector<topology::LinkId>& event_path_links,
      const util::DynamicBitset& event_links, ConnectionId exclude) const;

  /// Sets a connection's elastic grant to zero, returning spare to its
  /// links.
  void retreat(DrConnection& c);

  /// Grants spare capacity in increments to `candidates` according to the
  /// configured adaptation scheme, until no candidate can gain.
  /// `candidates` must be ascending and duplicate-free (every caller builds
  /// it by merging the already-sorted chaining sets); when no candidate can
  /// gain — the common case during saturated churn — the call returns
  /// before any heap or ordering work.
  void redistribute(const std::vector<ConnectionId>& candidates);
  [[nodiscard]] bool can_gain(const DrConnection& c) const;
  void grant_one(DrConnection& c);

  void commit_primary_min(const DrConnection& c);
  void release_primary_min(const DrConnection& c);
  /// Appends `c` to the per-link primary registry of every primary link and
  /// records the slot indices in `c.registry_slots` (swap-erase support).
  void register_primary(DrConnection& c);
  void unregister_primary(const DrConnection& c);

  /// Reserves a backup channel along `path` (defending the primary links in
  /// `trigger`) for `c` and syncs link reservations.  The channel is
  /// appended to `c.backups` (activation order = establishment order).
  void commit_backup(DrConnection& c, topology::Path path,
                     util::DynamicBitset trigger);
  /// Drops channel `idx` of c's backup set and syncs link reservations.
  /// Later channels shift down one slot (activation order is preserved).
  void remove_backup_channel(DrConnection& c, std::size_t idx);
  /// Drops every backup channel of `c`.
  void remove_backup(DrConnection& c);
  /// Tops up c's backup set to the configured scheme's target (one channel,
  /// two disjoint channels, or per-segment coverage).  Returns true when at
  /// least one channel was added.
  bool establish_backup(DrConnection& c);
  /// Re-registers channel `idx` under a new trigger set (after a switchover
  /// changed the primary a full-span sibling defends).
  void retrigger_backup_channel(DrConnection& c, std::size_t idx,
                                util::DynamicBitset trigger);
  /// One-channel route search shared by every scheme: wraps the router
  /// query with the configured SRLG policy and the sibling-exclusion set.
  [[nodiscard]] std::optional<topology::Path> find_backup_channel(
      topology::NodeId src, topology::NodeId dst, double bmin,
      const util::DynamicBitset& trigger, const util::DynamicBitset& primary_bits,
      const util::DynamicBitset* sibling_links, bool require_disjoint) const;
  /// kSegment top-up: one channel per uncovered primary sub-path of at most
  /// segment_span_hops hops.  Returns true when any channel was added.
  bool establish_segment_backups(DrConnection& c);
  /// Admission probe for kSegment: can at least one segment channel be
  /// established right now?  Query-only, no ledger mutation.
  [[nodiscard]] bool segment_cover_possible(const topology::Path& primary,
                                            const util::DynamicBitset& primary_bits,
                                            double bmin) const;
  /// Union of primary links plus every link sharing a risk group with one
  /// (== primary_links when no groups are declared or policy is kIgnore).
  [[nodiscard]] util::DynamicBitset srlg_expand(
      const util::DynamicBitset& links) const;
  /// Splices `patch` into `primary` between the patch's endpoint nodes
  /// (full-span patch: the result is the patch itself).
  [[nodiscard]] static topology::Path splice_primary(
      const topology::Path& primary, const topology::Path& patch);

  void sync_backup_reservation(topology::LinkId l);

  /// Removes an id from every active-connection registry.  The connection's
  /// ledger resources must already have been released.
  void drop_active(ConnectionId id);

  /// Outcome of a re-establishment attempt for a stranded victim.
  enum class RescueOutcome : std::uint8_t { kPair, kDegraded, kFailed };
  /// Attempts to re-home a victim whose old primary resources are already
  /// released: fresh primary route, then a disjoint backup on top of it.
  /// On kFailed the connection holds no resources and must be dropped.
  RescueOutcome rescue(DrConnection& c);

  /// After failures, evicts backups from links whose admission ledger
  /// overflowed (overbooking debt) and tries to re-route them.  Returns
  /// (evicted, reestablished).
  std::pair<std::size_t, std::size_t> settle_overbooking_debt();

  [[nodiscard]] util::DynamicBitset path_bits(const topology::Path& p) const;

  topology::Graph graph_;
  NetworkConfig config_;
  std::vector<LinkState> links_;
  BackupManager backups_;
  /// Per-destination hop-distance bounds for goal-directed route search;
  /// fail_link/repair_link keep its usable-link mask equal to the non-failed
  /// set (declared before router_, which borrows it).
  topology::HopDistanceField goal_;
  Router router_;

  /// Connection arena: records live at a stable address for their active
  /// lifetime (deque growth never moves elements), and freed slots are
  /// recycled LIFO, so ids stay stable with no swap-moves of the heavy
  /// records and per-event scans walk contiguous storage.
  std::deque<DrConnection> arena_;
  std::vector<std::uint32_t> free_slots_;
  /// id -> arena slot + record address for every active connection (the
  /// only per-id hash).  The pointer duplicates &arena_[slot] — stable for
  /// the record's lifetime — so by-id lookups skip the deque's two-level
  /// indexing (232-byte records pack only two per block, making that
  /// indirection a guaranteed extra cache line on the request hot path).
  struct ArenaRef {
    std::uint32_t slot;
    DrConnection* ptr;
  };
  std::unordered_map<ConnectionId, ArenaRef> slot_of_;
  std::vector<ConnectionId> active_ids_;
  /// Dense mirrors of active_ids_ (same order): the records' arena slots
  /// and addresses, so per-event scans over the active set skip the hash
  /// probe per id.
  std::vector<std::uint32_t> active_slots_;
  std::vector<const DrConnection*> active_conns_;
  /// Per-link primary registry, structure-of-arrays: `ids` carry identity
  /// (what classification and victim lists sort), `slots` the matching
  /// arena positions for hash-free record access.
  struct LinkRegistry {
    std::vector<ConnectionId> ids;
    std::vector<std::uint32_t> slots;
  };
  std::vector<LinkRegistry> primaries_on_link_;
  /// Structure-of-arrays mirror of the redistribute-hot per-connection
  /// fields, indexed by arena slot: the gainable prefilter's quota test
  /// scans flat vectors instead of pulling whole records through the cache.
  /// extra_quanta is synced on every grant/retreat; the qos-derived rows
  /// are fixed at insertion.
  std::vector<std::uint32_t> soa_extra_quanta_;
  std::vector<std::uint32_t> soa_max_extra_;
  std::vector<double> soa_increment_;
  std::vector<double> soa_utility_;

  /// SRLG membership: one link bitset per declared group (see
  /// set_risk_groups).  Consulted by backup placement (SrlgPolicy) and by
  /// the audits; not checkpointed (callers re-declare after load, exactly
  /// like the graph and config).
  std::vector<util::DynamicBitset> risk_groups_;

  /// Transient shard layout (see set_partition): per-link owning shard;
  /// empty when unsharded.  Like risk_groups_, never checkpointed.
  std::vector<std::uint32_t> link_shard_;
  std::uint64_t cross_shard_handoffs_ = 0;

  ConnectionId next_id_ = 1;
  NetworkStats stats_;
  ObsHandles obs_;

  // ---- Reused event scratch ------------------------------------------------
  // Every arrival/termination/failure classifies chains and merges candidate
  // lists; these buffers avoid re-allocating them per event.  They carry no
  // state across events (each use fully overwrites what it reads), so reuse
  // cannot change results.  Mutable because classify_against is logically
  // const; the Network is not thread-safe regardless.
  mutable ChainSets chain_scratch_;
  mutable util::DynamicBitset direct_union_scratch_;
  /// (id, arena slot) of the currently-gainable candidates.
  mutable std::vector<std::pair<ConnectionId, std::uint32_t>> gainable_scratch_;
  /// Coefficient-scheme heap entry; ordered by (coef, id) exactly as the
  /// old pair<double, ConnectionId> heap, the slot rides along for
  /// hash-free record access.
  struct GainCandidate {
    double coef;
    ConnectionId id;
    std::uint32_t slot;
  };
  mutable std::vector<GainCandidate> heap_scratch_;
  mutable std::vector<ConnectionId> merge_scratch_;
};

}  // namespace eqos::net
