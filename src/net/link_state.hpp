// Per-link capacity ledger.
//
// Each link tracks three bandwidth pools (all in Kbit/s):
//
//   committed_min   — sum of the minimum reservations of the primary
//                     channels traversing the link (hard guarantees);
//   backup_reserved — the multiplexed reservation R_l held for inactive
//                     backup channels (hard at admission time, but
//                     *borrowable* by elastic grants while no backup is
//                     active — this borrowing is the paper's central
//                     resource-efficiency argument);
//   elastic_granted — sum of the extra increments currently lent to
//                     primaries.
//
// Invariants (checked by Network::validate_invariants):
//   committed_min + backup_reserved <= capacity      (admission ledger)
//   committed_min + elastic_granted <= capacity      (grants may use the
//                                                     backup headroom)
#pragma once

#include <stdexcept>

namespace eqos::net {

/// Capacity bookkeeping of a single link.
class LinkState {
 public:
  LinkState() = default;
  explicit LinkState(double capacity_kbps) : capacity_(capacity_kbps) {
    if (!(capacity_kbps > 0.0))
      throw std::invalid_argument("link: capacity must be positive");
  }

  [[nodiscard]] double capacity() const noexcept { return capacity_; }
  [[nodiscard]] double committed_min() const noexcept { return committed_min_; }
  [[nodiscard]] double backup_reserved() const noexcept { return backup_reserved_; }
  [[nodiscard]] double elastic_granted() const noexcept { return elastic_granted_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  /// Headroom of the admission ledger (mins + backup reservation).
  [[nodiscard]] double admission_headroom() const noexcept {
    return capacity_ - committed_min_ - backup_reserved_;
  }

  /// Capacity still grantable to elastic primaries (borrows the backup
  /// reservation; never negative in a consistent network).
  [[nodiscard]] double elastic_spare() const noexcept {
    return capacity_ - committed_min_ - elastic_granted_;
  }

  /// Whether a new primary needing `bmin` may be admitted on this link.
  [[nodiscard]] bool admits_primary(double bmin) const noexcept {
    return !failed_ && admission_headroom() >= bmin - kEpsilon;
  }

  void commit_min(double bmin);
  void release_min(double bmin);
  void set_backup_reserved(double kbps);
  void grant_elastic(double kbps);
  void revoke_elastic(double kbps);
  void set_failed(bool failed) noexcept { failed_ = failed; }

  /// Tolerance for floating-point ledger comparisons (Kbit/s).
  static constexpr double kEpsilon = 1e-6;

 private:
  double capacity_ = 0.0;
  double committed_min_ = 0.0;
  double backup_reserved_ = 0.0;
  double elastic_granted_ = 0.0;
  bool failed_ = false;
};

}  // namespace eqos::net
