#include "net/qos.hpp"

#include <cmath>
#include <stdexcept>

namespace eqos::net {

std::size_t ElasticQosSpec::num_states() const { return 1 + max_extra_quanta(); }

std::size_t ElasticQosSpec::max_extra_quanta() const {
  return static_cast<std::size_t>(
      std::llround((bmax_kbps - bmin_kbps) / increment_kbps));
}

double ElasticQosSpec::bandwidth_at(std::size_t quanta) const {
  return bmin_kbps + static_cast<double>(quanta) * increment_kbps;
}

void ElasticQosSpec::validate() const {
  if (!(bmin_kbps > 0.0)) throw std::invalid_argument("qos: bmin must be positive");
  if (bmax_kbps < bmin_kbps) throw std::invalid_argument("qos: bmax < bmin");
  if (!(increment_kbps > 0.0))
    throw std::invalid_argument("qos: increment must be positive");
  const double steps = (bmax_kbps - bmin_kbps) / increment_kbps;
  if (std::abs(steps - std::llround(steps)) > 1e-9)
    throw std::invalid_argument(
        "qos: (bmax - bmin) must be an integral multiple of the increment");
  if (!(utility > 0.0)) throw std::invalid_argument("qos: utility must be positive");
  if (recovery_deadline < 0.0)
    throw std::invalid_argument("qos: recovery_deadline must be non-negative");
}

}  // namespace eqos::net
