#include "state/serial.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <istream>
#include <ostream>

namespace eqos::state {
namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t n, std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = make_crc_table();
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::uint32_t c = seed ^ 0xffffffffu;
  for (std::size_t i = 0; i < n; ++i) c = table[(c ^ p[i]) & 0xffu] ^ (c >> 8);
  return c ^ 0xffffffffu;
}

// ---- Buffer -----------------------------------------------------------------

void Buffer::put_u8(std::uint8_t v) { bytes_.push_back(v); }

void Buffer::put_u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Buffer::put_u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) bytes_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Buffer::put_f64(double v) { put_u64(std::bit_cast<std::uint64_t>(v)); }

void Buffer::put_str(const std::string& s) {
  put_u64(s.size());
  put_bytes(s.data(), s.size());
}

void Buffer::put_bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  bytes_.insert(bytes_.end(), p, p + n);
}

void Buffer::put_f64_vec(const std::vector<double>& v) {
  put_u64(v.size());
  for (double x : v) put_f64(x);
}

void Buffer::put_u64_vec(const std::vector<std::uint64_t>& v) {
  put_u64(v.size());
  for (std::uint64_t x : v) put_u64(x);
}

void Buffer::need(std::size_t n) const {
  if (cursor_ + n > bytes_.size())
    throw CorruptError("checkpoint payload truncated (need " + std::to_string(n) +
                       " bytes, have " + std::to_string(bytes_.size() - cursor_) + ")");
}

std::uint8_t Buffer::get_u8() {
  need(1);
  return bytes_[cursor_++];
}

std::uint32_t Buffer::get_u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(bytes_[cursor_++]) << (8 * i);
  return v;
}

std::uint64_t Buffer::get_u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(bytes_[cursor_++]) << (8 * i);
  return v;
}

double Buffer::get_f64() { return std::bit_cast<double>(get_u64()); }

std::string Buffer::get_str() {
  const std::size_t n = get_count(1);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + cursor_), n);
  cursor_ += n;
  return s;
}

std::size_t Buffer::get_count(std::size_t min_element_bytes) {
  const std::uint64_t n = get_u64();
  if (min_element_bytes > 0 && n > remaining() / min_element_bytes)
    throw CorruptError("checkpoint count field exceeds payload size");
  return static_cast<std::size_t>(n);
}

std::vector<double> Buffer::get_f64_vec() {
  const std::size_t n = get_count(8);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = get_f64();
  return v;
}

std::vector<std::uint64_t> Buffer::get_u64_vec() {
  const std::size_t n = get_count(8);
  std::vector<std::uint64_t> v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = get_u64();
  return v;
}

void Buffer::get_bytes(void* out, std::size_t n) {
  need(n);
  std::memcpy(out, bytes_.data() + cursor_, n);
  cursor_ += n;
}

void Buffer::expect_consumed() const {
  if (cursor_ != bytes_.size())
    throw CorruptError("checkpoint section has " +
                       std::to_string(bytes_.size() - cursor_) + " trailing bytes");
}

// ---- Section files ----------------------------------------------------------

namespace {

void write_u32(std::ostream& out, std::uint32_t v) {
  std::uint8_t b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 4);
}

void write_u64(std::ostream& out, std::uint64_t v) {
  std::uint8_t b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 8);
}

std::uint32_t read_u32(std::istream& in) {
  std::uint8_t b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) throw CorruptError("checkpoint truncated");
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t read_u64(std::istream& in) {
  std::uint8_t b[8];
  if (!in.read(reinterpret_cast<char*>(b), 8)) throw CorruptError("checkpoint truncated");
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

}  // namespace

void write_sections(std::ostream& out, const char magic[4], std::uint32_t payload_kind,
                    std::uint64_t fingerprint, const std::vector<Section>& sections) {
  out.write(magic, 4);
  write_u32(out, kFormatVersion);
  write_u32(out, payload_kind);
  write_u64(out, fingerprint);
  for (const Section& s : sections) {
    write_u32(out, static_cast<std::uint32_t>(s.name.size()));
    out.write(s.name.data(), static_cast<std::streamsize>(s.name.size()));
    write_u64(out, s.payload.size());
    write_u32(out, s.payload.crc());
    out.write(reinterpret_cast<const char*>(s.payload.bytes().data()),
              static_cast<std::streamsize>(s.payload.size()));
  }
  write_u32(out, 0);  // trailer
}

Buffer& SectionFile::section(const std::string& name) {
  const auto it = sections.find(name);
  if (it == sections.end())
    throw CorruptError("checkpoint is missing section '" + name + "'");
  return it->second;
}

SectionFile read_sections(std::istream& in, const char magic[4]) {
  char found[4];
  if (!in.read(found, 4) || std::memcmp(found, magic, 4) != 0)
    throw CorruptError("checkpoint has the wrong magic (not a checkpoint file?)");
  SectionFile file;
  file.version = read_u32(in);
  if (file.version != kFormatVersion)
    throw VersionMismatchError("checkpoint format version " +
                               std::to_string(file.version) + " (this build reads " +
                               std::to_string(kFormatVersion) + ")");
  file.payload_kind = read_u32(in);
  file.fingerprint = read_u64(in);
  while (true) {
    const std::uint32_t name_len = read_u32(in);
    if (name_len == 0) break;  // trailer
    if (name_len > 256) throw CorruptError("checkpoint section name too long");
    std::string name(name_len, '\0');
    if (!in.read(name.data(), name_len)) throw CorruptError("checkpoint truncated");
    const std::uint64_t size = read_u64(in);
    const std::uint32_t expected_crc = read_u32(in);
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(size));
    if (size > 0 &&
        !in.read(reinterpret_cast<char*>(payload.data()),
                 static_cast<std::streamsize>(size)))
      throw CorruptError("checkpoint truncated inside section '" + name + "'");
    if (crc32(payload.data(), payload.size()) != expected_crc)
      throw CorruptError("checkpoint section '" + name + "' failed its CRC check");
    file.sections.emplace(std::move(name), Buffer(std::move(payload)));
  }
  return file;
}

void write_sections_file(const std::string& path, const char magic[4],
                         std::uint32_t payload_kind, std::uint64_t fingerprint,
                         const std::vector<Section>& sections) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot write " + tmp);
    write_sections(out, magic, payload_kind, fingerprint, sections);
    if (!out) throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

SectionFile read_sections_file(const std::string& path, const char magic[4]) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("checkpoint: cannot open " + path);
  return read_sections(in, magic);
}

}  // namespace eqos::state
