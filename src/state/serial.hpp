// Versioned, checksummed binary serialization primitives.
//
// The checkpoint layer (Simulator::save_checkpoint, the sweep cell store)
// needs a format that (a) round-trips every simulation value *bit*-exactly —
// doubles are stored as their IEEE-754 bit patterns, never through text —
// and (b) detects corruption instead of silently loading garbage.  The
// format is deliberately simple:
//
//   header    magic (4 bytes) | format_version u32 | payload_kind u32 |
//             fingerprint u64
//   sections  repeated: name_len u32 | name | payload_len u64 | crc32 u32 |
//             payload bytes
//   trailer   name_len == 0
//
// Every section carries a CRC-32 of its payload; a mismatch (or a truncated
// file, an unknown magic, or a version from the future) raises CorruptError
// so callers can quarantine the file and recompute.  The `fingerprint` binds
// a file to the configuration that produced it — resuming a sweep against a
// directory written by a different bench or config must fail loudly, never
// deliver wrong-but-plausible results.
//
// All integers are little-endian fixed-width; the writer and reader below
// are byte-order explicit so checkpoints are portable across hosts.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace eqos::state {

/// Thrown when a checkpoint is unreadable: truncated, checksum mismatch,
/// wrong magic, or a payload that fails structural validation.  Callers
/// treat this as "quarantine and recompute", never as a fatal error.
class CorruptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Thrown for a checkpoint whose format version this build does not read
/// (a CorruptError subtype: the quarantine path is the same).
class VersionMismatchError : public CorruptError {
 public:
  using CorruptError::CorruptError;
};

/// CRC-32 (IEEE 802.3 polynomial, reflected) of `n` bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n,
                                  std::uint32_t seed = 0) noexcept;

/// A growable byte buffer with typed little-endian put/get primitives.
/// Writes append; reads advance an internal cursor and throw CorruptError
/// when the payload runs out — a flipped length byte can never walk past
/// the end of the buffer.
class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::uint8_t>& bytes() noexcept { return bytes_; }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  [[nodiscard]] std::size_t cursor() const noexcept { return cursor_; }
  /// Bytes left to read.
  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - cursor_;
  }
  void rewind() noexcept { cursor_ = 0; }
  [[nodiscard]] std::uint32_t crc() const noexcept {
    return crc32(bytes_.data(), bytes_.size());
  }

  // ---- Writers ------------------------------------------------------------

  void put_u8(std::uint8_t v);
  void put_u32(std::uint32_t v);
  void put_u64(std::uint64_t v);
  void put_bool(bool v) { put_u8(v ? 1 : 0); }
  /// IEEE-754 bit pattern — round-trips NaN payloads and signed zeros.
  void put_f64(double v);
  void put_str(const std::string& s);
  void put_bytes(const void* data, std::size_t n);

  template <typename T, typename Fn>
  void put_vec(const std::vector<T>& v, Fn&& put_one) {
    put_u64(v.size());
    for (const T& x : v) put_one(x);
  }
  void put_f64_vec(const std::vector<double>& v);
  void put_u64_vec(const std::vector<std::uint64_t>& v);

  // ---- Readers (throw CorruptError on underrun) ---------------------------

  [[nodiscard]] std::uint8_t get_u8();
  [[nodiscard]] std::uint32_t get_u32();
  [[nodiscard]] std::uint64_t get_u64();
  [[nodiscard]] bool get_bool() { return get_u8() != 0; }
  [[nodiscard]] double get_f64();
  [[nodiscard]] std::string get_str();

  /// Reads a u64 element count and bounds-checks it against the bytes left
  /// (each element needs at least `min_element_bytes`), so a corrupted count
  /// cannot trigger a huge allocation.
  [[nodiscard]] std::size_t get_count(std::size_t min_element_bytes);
  [[nodiscard]] std::vector<double> get_f64_vec();
  [[nodiscard]] std::vector<std::uint64_t> get_u64_vec();
  /// Copies `n` raw bytes out (the inverse of put_bytes).
  void get_bytes(void* out, std::size_t n);

  /// Asserts the whole payload was consumed (a structural check: trailing
  /// bytes mean the reader and writer disagree about the layout).
  void expect_consumed() const;

 private:
  void need(std::size_t n) const;

  std::vector<std::uint8_t> bytes_;
  std::size_t cursor_ = 0;
};

/// Current checkpoint format version.  Bump on any layout change; readers
/// reject other versions with VersionMismatchError.  v2: multi-backup sets
/// (per-channel paths + trigger lists) and recovery-time samples.  v3: the
/// simulated recovery control plane — per-connection recovering flags, the
/// per-class recovery deadline, the deadline_miss loss cause, blackout-time
/// samples, and the Simulator's "recovery" section with in-flight
/// per-victim protocol state.
inline constexpr std::uint32_t kFormatVersion = 3;

/// Payload kinds carried in the file header (what the sections describe).
inline constexpr std::uint32_t kKindSimulation = 1;   ///< full Simulator state
inline constexpr std::uint32_t kKindSweepCell = 2;    ///< one (point, rep) result
inline constexpr std::uint32_t kKindGridRow = 3;      ///< raw bench grid row

/// One named section with its payload.
struct Section {
  std::string name;
  Buffer payload;
};

/// Writes a section file: header, each section with its CRC, trailer.
void write_sections(std::ostream& out, const char magic[4], std::uint32_t payload_kind,
                    std::uint64_t fingerprint, const std::vector<Section>& sections);

/// A parsed section file.
struct SectionFile {
  std::uint32_t version = 0;
  std::uint32_t payload_kind = 0;
  std::uint64_t fingerprint = 0;
  std::map<std::string, Buffer> sections;

  /// Required section access; throws CorruptError when absent.
  [[nodiscard]] Buffer& section(const std::string& name);
};

/// Reads and validates a section file: magic and version checked, every
/// section's CRC verified.  Throws CorruptError / VersionMismatchError.
[[nodiscard]] SectionFile read_sections(std::istream& in, const char magic[4]);

/// Atomic file write: serialize to `path + ".tmp"`, then rename over `path`.
/// A crash mid-write leaves either the old file or a .tmp that readers
/// ignore — never a half-written checkpoint under the real name.
void write_sections_file(const std::string& path, const char magic[4],
                         std::uint32_t payload_kind, std::uint64_t fingerprint,
                         const std::vector<Section>& sections);

/// Reads a section file from disk; CorruptError on any validation failure,
/// std::runtime_error when the file cannot be opened.
[[nodiscard]] SectionFile read_sections_file(const std::string& path, const char magic[4]);

}  // namespace eqos::state
