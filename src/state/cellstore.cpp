#include "state/cellstore.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <fstream>
#include <system_error>

#include "util/log.hpp"

namespace eqos::state {
namespace {

constexpr char kCellMagic[4] = {'E', 'Q', 'C', 'P'};
constexpr const char* kManifestName = "MANIFEST.tsv";

/// Parses "cell-<point>-<rep>.ckpt"; returns false for anything else
/// (manifest, .tmp leftovers, .corrupt quarantine, stray files).
bool parse_cell_name(const std::string& name, std::size_t& point, std::size_t& rep) {
  constexpr std::string_view prefix = "cell-";
  constexpr std::string_view suffix = ".ckpt";
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) return false;
  const std::string_view mid(name.data() + prefix.size(),
                             name.size() - prefix.size() - suffix.size());
  const std::size_t dash = mid.find('-');
  if (dash == std::string_view::npos || dash == 0 || dash + 1 >= mid.size()) return false;
  const auto parse = [](std::string_view s, std::size_t& out) {
    const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), out);
    return ec == std::errc() && ptr == s.data() + s.size();
  };
  return parse(mid.substr(0, dash), point) && parse(mid.substr(dash + 1), rep);
}

}  // namespace

CheckpointStore::CheckpointStore(std::string dir, std::uint32_t payload_kind,
                                 std::uint64_t fingerprint)
    : dir_(std::move(dir)), payload_kind_(payload_kind), fingerprint_(fingerprint) {
  std::filesystem::create_directories(dir_);
}

std::string CheckpointStore::cell_filename(std::size_t point, std::size_t rep) {
  return "cell-" + std::to_string(point) + "-" + std::to_string(rep) + ".ckpt";
}

void CheckpointStore::quarantine(const std::filesystem::path& file) noexcept {
  std::error_code ec;
  std::filesystem::path target = file;
  target += ".corrupt";
  std::filesystem::rename(file, target, ec);
  if (ec) {
    // rename over an existing quarantine file works on POSIX; anything else
    // (permissions, vanished file) we can only report.
    EQOS_WARN() << "checkpoint: could not quarantine " << file.string() << ": "
                << ec.message();
  } else {
    EQOS_WARN() << "checkpoint: quarantined corrupt file " << target.string();
  }
}

CheckpointStore::ScanResult CheckpointStore::scan() {
  ScanResult result;
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir_, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    std::size_t point = 0, rep = 0;
    if (!parse_cell_name(name, point, rep)) continue;
    try {
      SectionFile file = read_sections_file(entry.path().string(), kCellMagic);
      if (file.payload_kind != payload_kind_)
        throw CorruptError("cell has payload kind " + std::to_string(file.payload_kind) +
                           ", expected " + std::to_string(payload_kind_));
      if (file.fingerprint != fingerprint_)
        throw CorruptError("cell fingerprint does not match this sweep's configuration");
      Cell cell;
      cell.point = point;
      cell.rep = rep;
      cell.payload = std::move(file.section("cell"));
      cell.file = entry.path();
      result.cells.push_back(std::move(cell));
    } catch (const CorruptError& e) {
      EQOS_WARN() << "checkpoint: " << name << ": " << e.what();
      quarantine(entry.path());
      ++result.quarantined;
    }
  }
  if (ec)
    throw std::runtime_error("checkpoint: cannot scan directory " + dir_ + ": " +
                             ec.message());
  std::sort(result.cells.begin(), result.cells.end(),
            [](const Cell& a, const Cell& b) {
              return a.point != b.point ? a.point < b.point : a.rep < b.rep;
            });
  return result;
}

void CheckpointStore::write_cell(std::size_t point, std::size_t rep,
                                 const Buffer& payload) {
  std::vector<Section> sections;
  sections.push_back(Section{"cell", payload});
  const std::filesystem::path path =
      std::filesystem::path(dir_) / cell_filename(point, rep);
  write_sections_file(path.string(), kCellMagic, payload_kind_, fingerprint_, sections);
}

void CheckpointStore::note_completed(std::size_t point, std::size_t rep,
                                     std::uint32_t crc, std::size_t bytes,
                                     std::size_t flush_every) {
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    completed_.push_back(Completed{point, rep, bytes, crc});
    if (++unflushed_ >= std::max<std::size_t>(flush_every, 1)) {
      unflushed_ = 0;
      flush = true;
    }
  }
  if (flush) flush_manifest();
}

void CheckpointStore::flush_manifest() {
  std::vector<Completed> rows;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    rows = completed_;
    unflushed_ = 0;
  }
  std::sort(rows.begin(), rows.end(), [](const Completed& a, const Completed& b) {
    return a.point != b.point ? a.point < b.point : a.rep < b.rep;
  });
  const std::filesystem::path path = std::filesystem::path(dir_) / kManifestName;
  const std::string tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("checkpoint: cannot write " + tmp);
    out << "# point\trep\tcrc32\tbytes\n";
    for (const Completed& c : rows)
      out << c.point << '\t' << c.rep << '\t' << c.crc << '\t' << c.bytes << '\n';
    if (!out) throw std::runtime_error("checkpoint: write failed for " + tmp);
  }
  std::filesystem::rename(tmp, path);
}

}  // namespace eqos::state
