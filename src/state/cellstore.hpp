// Crash-tolerant sweep checkpoint directory.
//
// A resumable sweep persists one small file per completed (point, rep) cell
// plus a human-readable manifest.  The cell files are the source of truth —
// each is a self-validating section file (magic, format version, per-section
// CRC, and a fingerprint binding it to the sweep's configuration), so a
// resume never needs to trust the manifest:
//
//   <dir>/cell-<point>-<rep>.ckpt   one serialized result, written atomically
//                                   (tmp + rename) after the cell completes
//   <dir>/MANIFEST.tsv              "point  rep  crc32  bytes" per completed
//                                   cell, rewritten atomically every
//                                   --checkpoint-every completions
//
// scan() validates every cell file and *quarantines* anything unreadable —
// truncated, bit-flipped, wrong version, wrong fingerprint — by renaming it
// to <name>.corrupt.  Quarantined cells are simply recomputed: graceful
// degradation, never silent reuse of bad data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <vector>

#include "state/serial.hpp"

namespace eqos::state {

/// Manages one sweep's checkpoint directory.  write_cell is safe to call
/// from concurrent sweep workers (distinct cells write distinct files; the
/// manifest is guarded by a mutex).
class CheckpointStore {
 public:
  /// Creates `dir` if needed.  `payload_kind` and `fingerprint` stamp every
  /// cell file and are verified by scan().
  CheckpointStore(std::string dir, std::uint32_t payload_kind, std::uint64_t fingerprint);

  /// One validated cell found by scan().
  struct Cell {
    std::size_t point = 0;
    std::size_t rep = 0;
    Buffer payload;
    std::filesystem::path file;  ///< for quarantining on decode failure
  };

  struct ScanResult {
    std::vector<Cell> cells;          ///< valid cells, sorted by (point, rep)
    std::size_t quarantined = 0;      ///< corrupt files renamed *.corrupt
  };

  /// Validates every cell file in the directory.  Files that fail any check
  /// (CRC, magic, version, payload kind, fingerprint) are quarantined and
  /// counted; the survivors are returned for the caller to decode.
  [[nodiscard]] ScanResult scan();

  /// Atomically persists one completed cell (write tmp, rename).
  void write_cell(std::size_t point, std::size_t rep, const Buffer& payload);

  /// Records a completed cell for the manifest; flushes the manifest every
  /// `flush_every` completions (and always on flush_manifest()).
  void note_completed(std::size_t point, std::size_t rep, std::uint32_t crc,
                      std::size_t bytes, std::size_t flush_every);

  /// Rewrites MANIFEST.tsv atomically from the completions recorded so far.
  void flush_manifest();

  /// Renames `file` to `file + ".corrupt"` (replacing any previous
  /// quarantine of the same name).  Never throws: quarantining is
  /// best-effort cleanup on an already-failing path.
  static void quarantine(const std::filesystem::path& file) noexcept;

  [[nodiscard]] static std::string cell_filename(std::size_t point, std::size_t rep);
  [[nodiscard]] const std::string& dir() const noexcept { return dir_; }

 private:
  struct Completed {
    std::size_t point, rep, bytes;
    std::uint32_t crc;
  };

  std::string dir_;
  std::uint32_t payload_kind_;
  std::uint64_t fingerprint_;
  std::mutex mutex_;                  ///< guards completed_
  std::vector<Completed> completed_;
  std::size_t unflushed_ = 0;
};

}  // namespace eqos::state
