#include "matrix/gth.hpp"

#include <cassert>
#include <stdexcept>

namespace eqos::matrix {
namespace {

// Core GTH elimination on a rate/probability matrix whose off-diagonal
// entries are the transition weights out of each state (diagonal ignored).
// Works identically for CTMC generators and DTMC transition matrices because
// the stationary vector only depends on off-diagonal proportions.
Vector gth_core(Matrix a) {
  assert(a.square());
  const std::size_t n = a.rows();
  if (n == 0) throw std::invalid_argument("gth: empty chain");
  if (n == 1) return Vector{1.0};

  // Backward elimination of states n-1, n-2, ..., 1.
  for (std::size_t kk = n; kk-- > 1;) {
    double departure = 0.0;  // total weight out of state kk to states < kk
    for (std::size_t j = 0; j < kk; ++j) departure += a(kk, j);
    if (departure <= 0.0)
      throw std::invalid_argument("gth: chain is not irreducible (state " +
                                  std::to_string(kk) + " cannot reach lower states)");
    for (std::size_t i = 0; i < kk; ++i) {
      const double w = a(i, kk) / departure;
      a(i, kk) = w;  // kept for back-substitution: P-weight of i feeding kk
      if (w == 0.0) continue;
      // Redistribute i -> kk flow to kk's remaining destinations.
      for (std::size_t j = 0; j < kk; ++j) {
        if (j == i) continue;
        a(i, j) += w * a(kk, j);
      }
    }
  }

  // Back substitution: pi_0 = 1; each eliminated state's unnormalized
  // probability is the (already departure-normalized) inflow from lower
  // states.  Only additions and multiplications of non-negative numbers.
  Vector pi(n, 0.0);
  pi[0] = 1.0;
  for (std::size_t k = 1; k < n; ++k) {
    double inflow = 0.0;
    for (std::size_t i = 0; i < k; ++i) inflow += pi[i] * a(i, k);
    pi[k] = inflow;
  }
  normalize_l1(pi);
  return pi;
}

}  // namespace

Vector gth_steady_state(const Matrix& generator) {
#ifndef NDEBUG
  for (std::size_t i = 0; i < generator.rows(); ++i)
    for (std::size_t j = 0; j < generator.cols(); ++j)
      if (i != j) assert(generator(i, j) >= 0.0 && "negative off-diagonal rate");
#endif
  return gth_core(generator);
}

Vector gth_steady_state_dtmc(const Matrix& transition) {
#ifndef NDEBUG
  for (std::size_t i = 0; i < transition.rows(); ++i)
    for (std::size_t j = 0; j < transition.cols(); ++j)
      assert(transition(i, j) >= 0.0 && "negative probability");
#endif
  return gth_core(transition);
}

}  // namespace eqos::matrix
