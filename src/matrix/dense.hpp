// Dense row-major matrix and vector helpers.
//
// The Markov chains in this library are small (the paper's largest chain has
// nine states), so a straightforward dense representation with O(n^3) direct
// solvers is the right tool.  SHARPE — the solver the paper used — is
// replaced by `lu.hpp` (general linear systems) and `gth.hpp` (numerically
// robust CTMC steady state).
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace eqos::matrix {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix filled with `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Constructs from nested initializer lists; all rows must have equal
  /// length.  Intended for tests and examples.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// n x n identity.
  [[nodiscard]] static Matrix identity(std::size_t n);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] bool square() const noexcept { return rows_ == cols_; }

  [[nodiscard]] double& operator()(std::size_t r, std::size_t c);
  [[nodiscard]] double operator()(std::size_t r, std::size_t c) const;

  /// Raw row-major storage (rows() * cols() doubles).
  [[nodiscard]] const std::vector<double>& data() const noexcept { return data_; }

  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }
  friend Matrix operator*(Matrix a, double s) { return a *= s; }
  friend Matrix operator*(double s, Matrix a) { return a *= s; }

  /// Matrix product; requires cols() == other.rows().
  [[nodiscard]] Matrix multiply(const Matrix& other) const;
  friend Matrix operator*(const Matrix& a, const Matrix& b) { return a.multiply(b); }

  [[nodiscard]] Matrix transpose() const;

  /// y = A x (right multiplication by a column vector).
  [[nodiscard]] Vector apply(const Vector& x) const;
  /// y = x^T A (left multiplication by a row vector) — the natural operation
  /// for probability vectors.
  [[nodiscard]] Vector apply_left(const Vector& x) const;

  /// Maximum absolute entry.
  [[nodiscard]] double max_abs() const;

  /// Multi-line human-readable rendering (tests/diagnostics).
  [[nodiscard]] std::string to_string(int precision = 6) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Euclidean norm.
[[nodiscard]] double norm2(const Vector& v);
/// Sum of absolute values.
[[nodiscard]] double norm1(const Vector& v);
/// Maximum absolute component.
[[nodiscard]] double norm_inf(const Vector& v);
/// Dot product; sizes must match.
[[nodiscard]] double dot(const Vector& a, const Vector& b);
/// Scales `v` so its entries sum to one.  Requires a positive sum.
void normalize_l1(Vector& v);

}  // namespace eqos::matrix
