#include "matrix/dense.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

namespace eqos::matrix {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_ && "ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::operator()(std::size_t r, std::size_t c) {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

double Matrix::operator()(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  return data_[r * cols_ + c];
}

Matrix& Matrix::operator+=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (auto& x : data_) x *= scalar;
  return *this;
}

Matrix Matrix::multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < other.cols_; ++j)
        out(i, j) += aik * other(k, j);
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Vector Matrix::apply(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) y[i] += (*this)(i, j) * x[j];
  return y;
}

Vector Matrix::apply_left(const Vector& x) const {
  assert(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < cols_; ++j) y[j] += xi * (*this)(i, j);
  }
  return y;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::string Matrix::to_string(int precision) const {
  std::ostringstream out;
  out.precision(precision);
  for (std::size_t i = 0; i < rows_; ++i) {
    out << '[';
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j != 0) out << ", ";
      out << (*this)(i, j);
    }
    out << "]\n";
  }
  return out.str();
}

double norm2(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm1(const Vector& v) {
  double s = 0.0;
  for (double x : v) s += std::abs(x);
  return s;
}

double norm_inf(const Vector& v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, std::abs(x));
  return m;
}

double dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void normalize_l1(Vector& v) {
  double s = 0.0;
  for (double x : v) s += x;
  assert(s > 0.0);
  for (auto& x : v) x /= s;
}

}  // namespace eqos::matrix
