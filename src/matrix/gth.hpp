// Grassmann-Taksar-Heyman (GTH) elimination for stationary distributions.
//
// GTH computes the stationary vector of an irreducible Markov chain using
// only additions of non-negative quantities — no subtractive cancellation —
// which makes it the method of choice when transition rates span many orders
// of magnitude (the paper's Figure 4 sweeps the failure rate from 1e-7 to
// 1e-2 against arrival rates of 1e-3, exactly the regime where naive
// elimination loses accuracy).
#pragma once

#include "matrix/dense.hpp"

namespace eqos::matrix {

/// Stationary distribution of a CTMC from its generator matrix Q
/// (off-diagonal rates >= 0, rows sum to 0).  The chain must be irreducible;
/// an absorbing or disconnected state yields a std::invalid_argument.
/// Returns pi with pi Q = 0 and sum(pi) = 1.
[[nodiscard]] Vector gth_steady_state(const Matrix& generator);

/// Stationary distribution of a DTMC from its (row-stochastic) transition
/// probability matrix P.  Same irreducibility requirement.
/// Returns pi with pi P = pi and sum(pi) = 1.
[[nodiscard]] Vector gth_steady_state_dtmc(const Matrix& transition);

}  // namespace eqos::matrix
