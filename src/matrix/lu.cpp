#include "matrix/lu.hpp"

#include <cassert>
#include <cmath>
#include <numeric>

namespace eqos::matrix {
namespace {
// Relative pivot threshold: pivots smaller than this times the largest
// absolute entry of the input matrix are treated as zero.
constexpr double kPivotRel = 1e-13;
}  // namespace

LuDecomposition::LuDecomposition(const Matrix& a) : n_(a.rows()), lu_(a), perm_(n_) {
  assert(a.square());
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  const double scale = std::max(a.max_abs(), 1.0);

  for (std::size_t col = 0; col < n_; ++col) {
    // Partial pivoting: bring the largest remaining entry of this column up.
    std::size_t pivot = col;
    double best = std::abs(lu_(col, col));
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double v = std::abs(lu_(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best <= kPivotRel * scale) throw SingularMatrixError(col);
    if (pivot != col) {
      for (std::size_t c = 0; c < n_; ++c) std::swap(lu_(col, c), lu_(pivot, c));
      std::swap(perm_[col], perm_[pivot]);
      sign_ = -sign_;
    }
    const double inv_pivot = 1.0 / lu_(col, col);
    for (std::size_t r = col + 1; r < n_; ++r) {
      const double factor = lu_(r, col) * inv_pivot;
      lu_(r, col) = factor;  // store L below the diagonal
      if (factor == 0.0) continue;
      for (std::size_t c = col + 1; c < n_; ++c) lu_(r, c) -= factor * lu_(col, c);
    }
  }
}

Vector LuDecomposition::solve(const Vector& b) const {
  assert(b.size() == n_);
  Vector x(n_);
  // Forward substitution with the permuted right-hand side: L y = P b.
  for (std::size_t i = 0; i < n_; ++i) {
    double sum = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu_(i, j) * x[j];
    x[i] = sum;
  }
  // Back substitution: U x = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    double sum = x[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) sum -= lu_(ii, j) * x[j];
    x[ii] = sum / lu_(ii, ii);
  }
  return x;
}

Matrix LuDecomposition::solve(const Matrix& b) const {
  assert(b.rows() == n_);
  Matrix x(n_, b.cols());
  Vector col(n_);
  for (std::size_t c = 0; c < b.cols(); ++c) {
    for (std::size_t r = 0; r < n_; ++r) col[r] = b(r, c);
    const Vector sol = solve(col);
    for (std::size_t r = 0; r < n_; ++r) x(r, c) = sol[r];
  }
  return x;
}

double LuDecomposition::determinant() const {
  double det = sign_;
  for (std::size_t i = 0; i < n_; ++i) det *= lu_(i, i);
  return det;
}

Matrix LuDecomposition::inverse() const { return solve(Matrix::identity(n_)); }

Vector solve_linear(const Matrix& a, const Vector& b) {
  return LuDecomposition(a).solve(b);
}

}  // namespace eqos::matrix
