// Compressed-sparse-row matrix.
//
// Generator matrices of the paper's bandwidth chains are small and dense-ish,
// but the library also exposes larger chains (e.g. product-form extensions
// and the uniformized transient solver over long horizons), where a CSR
// representation with O(nnz) matrix-vector products pays off.  Built once
// from triplets; immutable afterwards.
#pragma once

#include <cstddef>
#include <vector>

#include "matrix/dense.hpp"

namespace eqos::matrix {

/// (row, col, value) entry used to assemble a sparse matrix.
struct Triplet {
  std::size_t row;
  std::size_t col;
  double value;
};

/// Immutable CSR matrix.  Duplicate triplets are summed during assembly;
/// explicit zeros are dropped.
class CsrMatrix {
 public:
  /// Assembles from an arbitrary-order triplet list.
  CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> entries);

  /// Converts a dense matrix, dropping exact zeros.
  [[nodiscard]] static CsrMatrix from_dense(const Matrix& dense);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t nonzeros() const noexcept { return values_.size(); }

  /// Value at (r, c); zero if not stored.
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// y = A x.
  [[nodiscard]] Vector apply(const Vector& x) const;
  /// y = x^T A.
  [[nodiscard]] Vector apply_left(const Vector& x) const;

  /// Densifies (tests / small chains).
  [[nodiscard]] Matrix to_dense() const;

  /// Sum of each row's entries (e.g. generator-row check).
  [[nodiscard]] Vector row_sums() const;

 private:
  std::size_t rows_;
  std::size_t cols_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace eqos::matrix
