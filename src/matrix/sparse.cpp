#include "matrix/sparse.hpp"

#include <algorithm>
#include <cassert>

namespace eqos::matrix {

CsrMatrix::CsrMatrix(std::size_t rows, std::size_t cols, std::vector<Triplet> entries)
    : rows_(rows), cols_(cols), row_ptr_(rows + 1, 0) {
  for ([[maybe_unused]] const auto& t : entries)
    assert(t.row < rows && t.col < cols);
  std::sort(entries.begin(), entries.end(), [](const Triplet& a, const Triplet& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  col_idx_.reserve(entries.size());
  values_.reserve(entries.size());
  for (std::size_t i = 0; i < entries.size();) {
    const std::size_t r = entries[i].row;
    const std::size_t c = entries[i].col;
    double sum = 0.0;
    while (i < entries.size() && entries[i].row == r && entries[i].col == c) {
      sum += entries[i].value;
      ++i;
    }
    if (sum != 0.0) {
      col_idx_.push_back(c);
      values_.push_back(sum);
      ++row_ptr_[r + 1];
    }
  }
  for (std::size_t r = 0; r < rows_; ++r) row_ptr_[r + 1] += row_ptr_[r];
}

CsrMatrix CsrMatrix::from_dense(const Matrix& dense) {
  std::vector<Triplet> entries;
  for (std::size_t r = 0; r < dense.rows(); ++r)
    for (std::size_t c = 0; c < dense.cols(); ++c)
      if (dense(r, c) != 0.0) entries.push_back({r, c, dense(r, c)});
  return CsrMatrix(dense.rows(), dense.cols(), std::move(entries));
}

double CsrMatrix::at(std::size_t r, std::size_t c) const {
  assert(r < rows_ && c < cols_);
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[r + 1]);
  const auto it = std::lower_bound(begin, end, c);
  if (it == end || *it != c) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::apply(const Vector& x) const {
  assert(x.size() == cols_);
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      sum += values_[k] * x[col_idx_[k]];
    y[r] = sum;
  }
  return y;
}

Vector CsrMatrix::apply_left(const Vector& x) const {
  assert(x.size() == rows_);
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double xr = x[r];
    if (xr == 0.0) continue;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      y[col_idx_[k]] += xr * values_[k];
  }
  return y;
}

Matrix CsrMatrix::to_dense() const {
  Matrix out(rows_, cols_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k)
      out(r, col_idx_[k]) = values_[k];
  return out;
}

Vector CsrMatrix::row_sums() const {
  Vector sums(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) sums[r] += values_[k];
  return sums;
}

}  // namespace eqos::matrix
