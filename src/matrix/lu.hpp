// LU factorization with partial pivoting and the solvers built on it.
//
// Used for general linear systems (e.g. the mean-first-passage and
// steady-state equations of small Markov chains) and for determinants /
// inverses in tests.  Throws `SingularMatrixError` when elimination meets a
// pivot below a relative threshold.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <vector>

#include "matrix/dense.hpp"

namespace eqos::matrix {

/// Thrown when a factorization or solve meets a (numerically) singular
/// matrix.
class SingularMatrixError : public std::runtime_error {
 public:
  explicit SingularMatrixError(std::size_t pivot_row)
      : std::runtime_error("singular matrix at pivot row " + std::to_string(pivot_row)),
        pivot_row_(pivot_row) {}
  [[nodiscard]] std::size_t pivot_row() const noexcept { return pivot_row_; }

 private:
  std::size_t pivot_row_;
};

/// PA = LU factorization of a square matrix with row partial pivoting.
class LuDecomposition {
 public:
  /// Factorizes `a`; throws SingularMatrixError if a pivot is ~0.
  explicit LuDecomposition(const Matrix& a);

  /// Solves A x = b.  b.size() must equal the matrix dimension.
  [[nodiscard]] Vector solve(const Vector& b) const;

  /// Solves A X = B column-by-column; B must have matching row count.
  [[nodiscard]] Matrix solve(const Matrix& b) const;

  /// det(A), including the permutation sign.
  [[nodiscard]] double determinant() const;

  /// A^-1 (solve against the identity).
  [[nodiscard]] Matrix inverse() const;

  [[nodiscard]] std::size_t dimension() const noexcept { return n_; }

 private:
  std::size_t n_;
  Matrix lu_;                  // packed L (unit diagonal, below) and U (diagonal and above)
  std::vector<std::size_t> perm_;  // row permutation: row i of PA is row perm_[i] of A
  int sign_ = 1;
};

/// One-shot convenience: solves A x = b via LU.
[[nodiscard]] Vector solve_linear(const Matrix& a, const Vector& b);

}  // namespace eqos::matrix
