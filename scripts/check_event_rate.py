#!/usr/bin/env python3
"""Enforce the event-engine throughput floor from a google-benchmark JSON dump.

Usage:
    check_event_rate.py BENCH_JSON [--floor 1e6] [--name BM_EventQueueScheduleRun/ladder]

Reads the --benchmark_out JSON written by bench_micro, collects every entry
whose name starts with --name (the ladder-queue hold-model benchmark, whose
items_per_second IS events per second), and fails unless the best of them
sustains at least --floor events/sec.  The best — not every — entry is
gated because the 10^6-pending configuration is expected to be slower than
the small ones; the floor asserts what the engine can sustain, single-core.

Missing file, no matching entries, or a non-numeric rate are errors, never
a skip: a vanished measurement must not read as a pass.  Wired into the
perf-smoke ctest label and scripts/ci.sh.
"""

import argparse
import json
import math
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("bench_json", help="google-benchmark --benchmark_out JSON")
    parser.add_argument(
        "--floor",
        type=float,
        default=1e6,
        help="minimum sustained events/sec (default 1e6)",
    )
    parser.add_argument(
        "--name",
        default="BM_EventQueueScheduleRun/ladder",
        help="benchmark name prefix to gate on",
    )
    args = parser.parse_args()

    try:
        with open(args.bench_json, "r", encoding="utf-8") as f:
            data = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_event_rate: {e}", file=sys.stderr)
        return 2

    rates = {}
    for entry in data.get("benchmarks", []):
        name = entry.get("name", "")
        if not name.startswith(args.name):
            continue
        if entry.get("run_type") == "aggregate":
            continue
        rate = entry.get("items_per_second")
        try:
            rate = float(rate)
        except (TypeError, ValueError):
            print(
                f"check_event_rate: {name} has no numeric items_per_second",
                file=sys.stderr,
            )
            return 2
        if math.isnan(rate) or rate <= 0.0:
            print(f"check_event_rate: {name} rate is unusable: {rate!r}", file=sys.stderr)
            return 2
        rates[name] = rate

    if not rates:
        print(
            f"check_event_rate: no '{args.name}*' entries in {args.bench_json} — "
            "the measurement vanished, which is a failure, not a skip",
            file=sys.stderr,
        )
        return 2

    best_name, best = max(rates.items(), key=lambda kv: kv[1])
    for name in sorted(rates):
        print(f"  {name}: {rates[name]:.4g} events/s")
    if best < args.floor:
        print(
            f"check_event_rate: best rate {best:.4g} events/s ({best_name}) is below "
            f"the floor {args.floor:.4g}",
            file=sys.stderr,
        )
        return 1
    print(f"check_event_rate: floor {args.floor:.4g} events/s met by {best_name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
