#!/usr/bin/env bash
# Full CI pipeline: the gates a change must clear before it merges.
#
#   1. default build  + tier-1 unit tests (`ctest -L tier1`, must-stay-green)
#   2. checkpoint-smoke: kill-mid-sweep -> resume -> byte-identical output
#   3. robustness-smoke: backup-scheme ablation + recovery-percentile schema
#   3b. recovery-smoke: event-driven recovery-protocol ablation (ideal vs
#      lossy signaling) + measured-TTR/blackout schema and signaling
#      invariants (retries >= losses, deadline_miss <= victims)
#   4. perf-smoke: bench_fig2 + bench_shard_scale throughput (points/s and
#      events/s) vs the committed baselines, plus the event-engine and
#      sharded-engine >= 10^6 events/s floors
#   5. event-rate floors and the sharded scaling bench, run directly (same
#      gates as the perf-smoke label, invoked explicitly so the numbers are
#      visible in the CI transcript)
#   6. sanitize preset (ASan + UBSan) build + tier-1 tests
#
# Stages run in this order so the cheap determinism gates fail fast before
# the sanitizer rebuild.  Pass --no-asan to skip stage 4 (e.g. on a machine
# without sanitizer runtimes); any other argument is an error.
#
#   scripts/ci.sh [--no-asan]
set -euo pipefail

cd "$(dirname "$0")/.."

run_asan=1
for arg in "$@"; do
  case "$arg" in
    --no-asan) run_asan=0 ;;
    *) echo "usage: scripts/ci.sh [--no-asan]" >&2; exit 2 ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 4)

stage() { printf '\n== %s ==\n' "$1"; }

stage "configure + build (default preset)"
cmake --preset default >/dev/null
cmake --build --preset default -j "$jobs"

stage "tier-1 unit tests"
ctest --test-dir build -L tier1 --output-on-failure -j "$jobs"

stage "checkpoint smoke (crash -> resume -> byte-identical)"
ctest --test-dir build -L checkpoint-smoke --output-on-failure

stage "robustness smoke (scheme ablation + recovery-SLA schema)"
ctest --test-dir build -L robustness-smoke --output-on-failure

stage "recovery smoke (event-driven protocol ablation + signaling invariants)"
ctest --test-dir build -L recovery-smoke --output-on-failure

stage "perf smoke (throughput vs baseline)"
ctest --test-dir build -L perf-smoke --output-on-failure

stage "event-engine throughput floor (>= 1e6 events/s single-core)"
build/bench/bench_micro '--benchmark_filter=BM_EventQueueScheduleRun/ladder/1000$' \
  --benchmark_out=build/bench/BENCH_event_rate_ci.json --benchmark_out_format=json >/dev/null
python3 scripts/check_event_rate.py build/bench/BENCH_event_rate_ci.json --floor 1e6

stage "sharded-engine throughput floor (8 shards, >= 1e6 events/s)"
build/bench/bench_micro '--benchmark_filter=BM_ShardedEngineScheduleRun/shards8/1000$' \
  --benchmark_out=build/bench/BENCH_shard_rate_ci.json --benchmark_out_format=json >/dev/null
python3 scripts/check_event_rate.py build/bench/BENCH_shard_rate_ci.json \
  --name BM_ShardedEngineScheduleRun/shards8/1000 --floor 1e6

stage "sharded scaling bench (smoke torus, 4 shards, vs baseline)"
build/bench/bench_shard_scale --smoke --shards 4 \
  --json build/bench/BENCH_shard_smoke_ci.json >/dev/null
python3 scripts/bench_compare.py BENCH_shard_smoke_baseline.json \
  build/bench/BENCH_shard_smoke_ci.json

if [ "$run_asan" -eq 1 ]; then
  stage "sanitizer build + tier-1 (ASan + UBSan)"
  cmake --preset sanitize >/dev/null
  cmake --build --preset sanitize -j "$jobs"
  ctest --preset sanitize -L tier1 -j "$jobs"
fi

stage "CI green"
