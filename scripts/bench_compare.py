#!/usr/bin/env python3
"""Compare two BENCH_sweep.json files and fail on throughput regressions.

Usage:
    bench_compare.py BASELINE CURRENT [--tolerance 0.20] [--require-all]

Both files may use the keyed format written by core::write_sweep_json
({"benches": {"bench_fig2": {...}, ...}}) or the historical single-object
format ({"bench": "bench_fig2", ...}).  For every bench present in both
files, the current points_per_second must be no more than --tolerance
(default 20%) below the baseline; any worse and the script prints the
offenders and exits nonzero.  Benches present only in the baseline are
warnings unless --require-all makes them errors (benches only in CURRENT
are always fine — new measurements are not regressions).

Wired into ctest as the `perf-smoke` label: a smoke-mode sweep writes a
fresh measurement which is compared against the committed baseline.
"""

import argparse
import json
import sys


def load_entries(path):
    """Returns {bench_name: entry_dict} for either supported format."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if "benches" in data and isinstance(data["benches"], dict):
        return data["benches"]
    if "bench" in data:
        name = data.pop("bench")
        return {name: data}
    raise ValueError(f"{path}: neither a keyed nor a legacy sweep measurement")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed reference BENCH_sweep.json")
    parser.add_argument("current", help="freshly measured BENCH_sweep.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional points/sec drop before failing (default 0.20)",
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="fail when a baseline bench is missing from the current file",
    )
    args = parser.parse_args()

    try:
        baseline = load_entries(args.baseline)
        current = load_entries(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    failures = []
    missing = []
    for name in sorted(baseline):
        if name not in current:
            missing.append(name)
            continue
        old = float(baseline[name].get("points_per_second", 0.0))
        new = float(current[name].get("points_per_second", 0.0))
        if old <= 0.0:
            print(f"  {name}: baseline has no throughput, skipped")
            continue
        ratio = new / old
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSION"
            failures.append(name)
        print(
            f"  {name}: {old:.4g} -> {new:.4g} points/s "
            f"({(ratio - 1.0) * 100.0:+.1f}%) {status}"
        )

    for name in missing:
        print(f"  {name}: present in baseline only", file=sys.stderr)
    if failures:
        print(
            f"bench_compare: {len(failures)} bench(es) regressed more than "
            f"{args.tolerance * 100.0:.0f}%: {', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    if missing and args.require_all:
        print("bench_compare: benches missing from current file", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
