#!/usr/bin/env python3
"""Compare two BENCH_sweep.json files and fail on throughput regressions.

Usage:
    bench_compare.py BASELINE CURRENT [--tolerance 0.20]

Both files may use the keyed format written by core::write_sweep_json
({"benches": {"bench_fig2": {...}, ...}}) or the historical single-object
format ({"bench": "bench_fig2", ...}).  For every bench in the baseline,
the current points_per_second AND events_per_second must each be no more
than --tolerance (default 20%) below the baseline; any worse and the script
prints the offenders and exits nonzero.  A bench present in the baseline but
absent from the current file is an error — a silently-vanished measurement
must not read as a pass (benches only in CURRENT are always fine — new
measurements are not regressions).  A baseline or current entry whose
points_per_second or events_per_second is missing, non-numeric, NaN, or
<= 0 is likewise an error, never a skip.

Ablation benches may key their entries per variant as "name/variant"
(e.g. "bench_multifailure/dual" from --schemes).  A plain baseline name is
satisfied by variant entries in the current file and vice versa: the
comparison then uses the best variant throughput, so a legacy baseline is
not flagged missing just because the measurement grew variants (or a
variant baseline meets a legacy measurement).

Wired into ctest as the `perf-smoke` label: a smoke-mode sweep writes a
fresh measurement which is compared against the committed baseline.
"""

import argparse
import json
import math
import sys


def load_entries(path):
    """Returns {bench_name: entry_dict} for either supported format."""
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    if "benches" in data and isinstance(data["benches"], dict):
        return data["benches"]
    if "bench" in data:
        name = data.pop("bench")
        return {name: data}
    raise ValueError(f"{path}: neither a keyed nor a legacy sweep measurement")


def throughput(entries, name, path, metric="points_per_second"):
    """`metric` of one entry, or raises ValueError with the reason."""
    value = entries[name].get(metric)
    if value is None:
        raise ValueError(f"{path}: {name} has no {metric} field")
    try:
        value = float(value)
    except (TypeError, ValueError):
        raise ValueError(
            f"{path}: {name} {metric} is not a number: {value!r}"
        ) from None
    if math.isnan(value):
        raise ValueError(f"{path}: {name} {metric} is NaN")
    if value <= 0.0:
        raise ValueError(
            f"{path}: {name} {metric} is {value:g} (must be > 0; "
            "a zero-throughput measurement is a broken run, not a baseline)"
        )
    return value


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed reference BENCH_sweep.json")
    parser.add_argument("current", help="freshly measured BENCH_sweep.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed fractional points/sec drop before failing (default 0.20)",
    )
    parser.add_argument(
        "--require-all",
        action="store_true",
        help="kept for compatibility; missing benches are always errors now",
    )
    args = parser.parse_args()

    try:
        baseline = load_entries(args.baseline)
        current = load_entries(args.current)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"bench_compare: {e}", file=sys.stderr)
        return 2

    def resolve(entries, name, path, metric):
        """Throughput for `name`, falling back across the variant boundary.

        Exact key first; otherwise "name" matches its "name/variant"
        entries (best throughput) and "name/variant" matches a plain
        "name".  Returns (value, label) or raises KeyError/ValueError.
        """
        if name in entries:
            return throughput(entries, name, path, metric), name
        variants = sorted(k for k in entries if k.startswith(name + "/"))
        if variants:
            best = max(variants, key=lambda k: throughput(entries, k, path, metric))
            return throughput(entries, best, path, metric), f"{name} (via {best})"
        base = name.split("/", 1)[0]
        if "/" in name and base in entries:
            return throughput(entries, base, path, metric), f"{name} (via {base})"
        raise KeyError(name)

    # Both throughput axes are gated with identical handling: a regression in
    # either fails, and a missing/NaN/zero value in either file is an error.
    metrics = (
        ("points_per_second", "points/s"),
        ("events_per_second", "events/s"),
    )
    failures = []
    missing = []
    bad_entries = []
    for name in sorted(baseline):
        for metric, unit in metrics:
            try:
                old, _ = resolve(baseline, name, args.baseline, metric)
                new, label = resolve(current, name, args.current, metric)
            except KeyError:
                if name not in missing:
                    missing.append(name)
                continue
            except ValueError as e:
                print(f"  {name}: BAD ENTRY ({e})")
                bad_entries.append(f"{name}.{metric}")
                continue
            ratio = new / old
            status = "ok"
            if ratio < 1.0 - args.tolerance:
                status = "REGRESSION"
                failures.append(f"{name}.{metric}")
            print(
                f"  {label}: {old:.4g} -> {new:.4g} {unit} "
                f"({(ratio - 1.0) * 100.0:+.1f}%) {status}"
            )

    rc = 0
    for name in missing:
        print(f"  {name}: present in baseline only", file=sys.stderr)
    if failures:
        print(
            f"bench_compare: {len(failures)} bench(es) regressed more than "
            f"{args.tolerance * 100.0:.0f}%: {', '.join(failures)}",
            file=sys.stderr,
        )
        rc = 1
    if bad_entries:
        print(
            f"bench_compare: unusable throughput entries for: {', '.join(bad_entries)}",
            file=sys.stderr,
        )
        rc = 1
    if missing:
        print(
            f"bench_compare: bench(es) missing from {args.current}: "
            f"{', '.join(missing)}",
            file=sys.stderr,
        )
        rc = 1
    return rc


if __name__ == "__main__":
    sys.exit(main())
