#!/usr/bin/env python3
"""Validate the observability JSON artifacts a bench emits.

Usage:
    validate_obs.py --sweep-json PATH --bench NAME [--trace-json PATH]
    validate_obs.py --sweep-json PATH --bench NAME \
        --recovery-schemes single,dual,segment
    validate_obs.py --sweep-json PATH --bench NAME \
        --recovery-protocol-schemes single,dual,segment

Checks the schema of:
  * the "metrics" section core::write_sweep_json embeds when a bench runs
    with --metrics: every entry is {"kind": "counter"|"gauge"|"histogram",
    ...} with the fields of its kind (counters/gauges carry an integer
    "value"; histograms carry "count", "sum", ascending "bounds", and
    len(bounds)+1 "buckets" summing to "count");
  * the flight-recorder dump written by --trace-json: {"reason", ...,
    "num_events": N, "events": [...]} with N == len(events), seq strictly
    ascending, and every event kind from the known set;
  * with --recovery-schemes, the per-scheme entries ("<bench>/<scheme>")
    the backup-scheme ablation writes: each must carry an "extra" object
    with, per failure process (poisson, adversary), monotone positive
    recovery percentiles *_ttr_p50 <= *_ttr_p95 <= *_ttr_p99 plus
    *_survived_backup_set, *_dropped (non-negative integers) and
    *_revenue (non-negative number).  A failure-free run omits all three
    percentile keys (accepted); partial presence or a literal 0.0
    percentile (the empty-sample-reads-as-instant-recovery bug) is an
    error;
  * with --recovery-protocol-schemes, the "<bench>/rp_<scheme>" entries the
    --recovery-protocol ablation writes: per signaling variant (ideal,
    lossy), monotone positive measured-TTR and blackout percentiles
    (all-or-none key presence, as above), non-negative signaling counters,
    and the protocol invariants retries >= losses (every observed loss
    schedules a retry) and deadline_miss <= victims (only severed victims
    can miss the deadline).

Wired into ctest as the `obs-smoke` and `robustness-smoke` labels.  Exits
nonzero with the first schema violation on stderr.
"""

import argparse
import json
import sys

TRACE_KINDS = {
    "arrival-admitted",
    "arrival-rejected",
    "termination",
    "retreat",
    "redistribute",
    "backup-activated",
    "backup-lost",
    "reroute",
    "drop",
    "fail-link",
    "repair-link",
    "audit-step",
}


def fail(message):
    print(f"validate_obs: {message}", file=sys.stderr)
    sys.exit(1)


def require(condition, message):
    if not condition:
        fail(message)


def validate_metrics(metrics, where):
    require(isinstance(metrics, dict), f"{where}: metrics is not an object")
    require(metrics, f"{where}: metrics object is empty")
    for name, entry in metrics.items():
        ctx = f"{where}: metric {name!r}"
        require(isinstance(entry, dict), f"{ctx} is not an object")
        kind = entry.get("kind")
        if kind in ("counter", "gauge"):
            require(isinstance(entry.get("value"), int), f"{ctx}: missing integer value")
        elif kind == "histogram":
            count = entry.get("count")
            bounds = entry.get("bounds")
            buckets = entry.get("buckets")
            require(isinstance(count, int) and count >= 0, f"{ctx}: bad count")
            require(isinstance(entry.get("sum"), (int, float)), f"{ctx}: bad sum")
            require(
                isinstance(bounds, list)
                and all(isinstance(b, (int, float)) for b in bounds)
                and bounds == sorted(bounds),
                f"{ctx}: bounds must be an ascending number list",
            )
            require(
                isinstance(buckets, list)
                and len(buckets) == len(bounds) + 1
                and all(isinstance(b, int) and b >= 0 for b in buckets),
                f"{ctx}: buckets must be len(bounds)+1 non-negative ints",
            )
            require(sum(buckets) == count, f"{ctx}: buckets do not sum to count")
        else:
            fail(f"{ctx}: unknown kind {kind!r}")


def validate_sweep(path, bench):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    entries = data.get("benches")
    require(isinstance(entries, dict), f"{path}: no 'benches' object")
    entry = entries.get(bench)
    require(isinstance(entry, dict), f"{path}: no entry for {bench!r}")
    require("metrics" in entry, f"{path}: {bench} entry has no 'metrics' section")
    validate_metrics(entry["metrics"], path)
    for label, point in entry.get("point_metrics", {}).items():
        validate_metrics(point, f"{path} point {label!r}")
    print(f"validate_obs: {path}: {bench} metrics ok "
          f"({len(entry['metrics'])} metrics)")


RECOVERY_PROCESSES = ("poisson", "adversary")


def validate_recovery(path, bench, schemes):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    entries = data.get("benches")
    require(isinstance(entries, dict), f"{path}: no 'benches' object")
    for scheme in schemes:
        key = f"{bench}/{scheme}"
        entry = entries.get(key)
        require(isinstance(entry, dict), f"{path}: no entry for {key!r}")
        extra = entry.get("extra")
        require(isinstance(extra, dict), f"{path}: {key} has no 'extra' object")
        for process in RECOVERY_PROCESSES:
            ctx = f"{path}: {key} {process}"
            # A failure-free run records no recovery samples: all three
            # percentile keys must then be absent (NaN percentiles are
            # omitted from JSON).  Partial presence means the writer is
            # inconsistent, and a literal 0.0 means the old
            # empty-sample-reads-as-instant-recovery bug is back.
            present = [q for q in (50, 95, 99)
                       if f"{process}_ttr_p{q}" in extra]
            if present:
                require(len(present) == 3,
                        f"{ctx}: partial recovery percentiles "
                        f"(only p{present})")
                pcts = []
                for q in (50, 95, 99):
                    v = extra.get(f"{process}_ttr_p{q}")
                    require(isinstance(v, (int, float)) and v >= 0,
                            f"{ctx}: bad ttr p{q}")
                    require(v != 0.0,
                            f"{ctx}: ttr p{q} is literal 0.0 — empty "
                            "recovery samples must omit the key, not "
                            "report instant recovery")
                    pcts.append(v)
                require(pcts[0] <= pcts[1] <= pcts[2],
                        f"{ctx}: recovery percentiles not monotone: {pcts}")
            for field in ("survived_backup_set", "dropped"):
                v = extra.get(f"{process}_{field}")
                require(
                    isinstance(v, (int, float)) and v >= 0
                    and float(v).is_integer(),
                    f"{ctx}: bad {field}",
                )
            revenue = extra.get(f"{process}_revenue")
            require(isinstance(revenue, (int, float)) and revenue >= 0,
                    f"{ctx}: bad revenue")
        print(f"validate_obs: {path}: {key} recovery percentiles ok")


RP_VARIANTS = ("ideal", "lossy")
RP_COUNTERS = ("signals", "losses", "retries", "deadline_miss", "victims",
               "dropped", "recovered")


def check_percentile_triple(extra, ctx, prefix, what):
    """All-or-none presence; if present, positive and monotone."""
    present = [q for q in (50, 95, 99) if f"{prefix}_p{q}" in extra]
    if not present:
        return
    require(len(present) == 3,
            f"{ctx}: partial {what} percentiles (only p{present})")
    pcts = []
    for q in (50, 95, 99):
        v = extra.get(f"{prefix}_p{q}")
        require(isinstance(v, (int, float)) and v >= 0, f"{ctx}: bad {what} p{q}")
        require(v != 0.0,
                f"{ctx}: {what} p{q} is literal 0.0 — empty samples must "
                "omit the key, not report instant recovery")
        pcts.append(v)
    require(pcts[0] <= pcts[1] <= pcts[2],
            f"{ctx}: {what} percentiles not monotone: {pcts}")


def validate_recovery_protocol(path, bench, schemes):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    entries = data.get("benches")
    require(isinstance(entries, dict), f"{path}: no 'benches' object")
    for scheme in schemes:
        key = f"{bench}/rp_{scheme}"
        entry = entries.get(key)
        require(isinstance(entry, dict), f"{path}: no entry for {key!r}")
        extra = entry.get("extra")
        require(isinstance(extra, dict), f"{path}: {key} has no 'extra' object")
        for variant in RP_VARIANTS:
            prefix = f"{variant}_rp"
            ctx = f"{path}: {key} {variant}"
            check_percentile_triple(extra, ctx, f"{prefix}_ttr", "measured TTR")
            check_percentile_triple(extra, ctx, f"{prefix}_blackout", "blackout")
            counters = {}
            for field in RP_COUNTERS:
                v = extra.get(f"{prefix}_{field}")
                require(isinstance(v, (int, float)) and v >= 0,
                        f"{ctx}: bad {field}")
                counters[field] = v
            # Protocol invariants (held per run, so they survive averaging
            # over reps): each observed loss schedules exactly one retry,
            # and only severed victims can miss the recovery deadline.
            require(counters["retries"] >= counters["losses"],
                    f"{ctx}: retries {counters['retries']} < "
                    f"losses {counters['losses']}")
            require(counters["deadline_miss"] <= counters["victims"],
                    f"{ctx}: deadline_miss {counters['deadline_miss']} > "
                    f"victims {counters['victims']}")
        print(f"validate_obs: {path}: {key} recovery-protocol metrics ok")


def validate_trace(path):
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    require(isinstance(data.get("reason"), str), f"{path}: missing reason string")
    events = data.get("events")
    require(isinstance(events, list), f"{path}: missing events array")
    require(data.get("num_events") == len(events),
            f"{path}: num_events != len(events)")
    prev_seq = None
    for i, event in enumerate(events):
        ctx = f"{path}: event {i}"
        require(isinstance(event, dict), f"{ctx} is not an object")
        seq = event.get("seq")
        require(isinstance(seq, int) and seq >= 0, f"{ctx}: bad seq")
        require(prev_seq is None or seq > prev_seq, f"{ctx}: seq not ascending")
        prev_seq = seq
        require(isinstance(event.get("time"), (int, float)), f"{ctx}: bad time")
        require(event.get("kind") in TRACE_KINDS,
                f"{ctx}: unknown kind {event.get('kind')!r}")
        require(isinstance(event.get("a"), int), f"{ctx}: bad operand a")
        require(isinstance(event.get("b"), int), f"{ctx}: bad operand b")
        require(isinstance(event.get("value"), (int, float)), f"{ctx}: bad value")
    print(f"validate_obs: {path}: trace ok ({len(events)} events)")


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--sweep-json", required=True)
    parser.add_argument("--bench", required=True)
    parser.add_argument("--trace-json")
    parser.add_argument(
        "--recovery-schemes",
        help="comma-separated scheme suffixes: validate the per-scheme "
             "'<bench>/<scheme>' recovery-percentile entries instead of "
             "the metrics section")
    parser.add_argument(
        "--recovery-protocol-schemes",
        help="comma-separated scheme suffixes: validate the per-scheme "
             "'<bench>/rp_<scheme>' recovery-protocol entries (measured "
             "TTR/blackout percentiles + signaling invariants) instead of "
             "the metrics section")
    args = parser.parse_args()
    try:
        if args.recovery_protocol_schemes:
            validate_recovery_protocol(
                args.sweep_json, args.bench,
                [s for s in args.recovery_protocol_schemes.split(",") if s])
        elif args.recovery_schemes:
            validate_recovery(args.sweep_json, args.bench,
                              [s for s in args.recovery_schemes.split(",") if s])
        else:
            validate_sweep(args.sweep_json, args.bench)
        if args.trace_json:
            validate_trace(args.trace_json)
    except (OSError, json.JSONDecodeError) as e:
        fail(str(e))
    return 0


if __name__ == "__main__":
    sys.exit(main())
