// Ablation A3: bandwidth increment size.
//
// Section 3.2 argues for discretized elasticity and Section 4 observes that
// "the scheme with a smaller increment size provides bandwidth close to the
// average bandwidth... however, [it] changes its bandwidth more frequently."
// This ablation sweeps the increment and reports both sides of that
// trade-off: the achieved average bandwidth and the adaptation churn
// (elastic quanta adjusted per workload event).
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Ablation A3: increment size vs accuracy and churn "
               "(3000 DR-connections) ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());
  bench::print_workload_header(bench::paper_experiment(3000));

  std::vector<double> increments{25.0, 50.0, 100.0, 200.0, 400.0};
  if (bench::fast_mode()) increments = {50.0, 200.0};
  if (cli.smoke) increments = {50.0};

  std::vector<core::SweepPoint> points;
  for (const double inc : increments) {
    auto cfg = bench::paper_experiment(3000, inc);
    if (cli.smoke) cfg = bench::smoke_config(cfg);
    points.push_back({&bench::random_network(), cfg, util::Table::num(inc, 0)});
  }
  const auto sweep = core::run_sweep(points, cli.sweep_options());

  util::Table table({"increment Kb/s", "states", "sim Kb/s", "markov Kb/s",
                     "adjustments/event", "Kb/s moved/event"});
  for (std::size_t i = 0; i < increments.size(); ++i) {
    const double inc = increments[i];
    const auto& cfg = points[i].config;
    const auto r = sweep.point_mean(i);
    const double events = static_cast<double>(cfg.warmup_events + cfg.measure_events +
                                              r.sim_stats.populate_attempts);
    // The paper's churn claim is about how *often* reservations change: the
    // raw count of one-increment adjustments.  The Kb/s volume moved per
    // event is reported alongside (roughly increment-independent).
    const double count_churn =
        static_cast<double>(r.network_stats.quanta_adjustments) / events;
    const double volume_churn = count_churn * inc;
    table.add_row({util::Table::num(inc, 0),
                   std::to_string(bench::paper_qos(inc).num_states()),
                   util::Table::num(r.sim_mean_bandwidth_kbps),
                   util::Table::num(r.analytic_paper_kbps),
                   util::Table::num(count_churn, 1),
                   util::Table::num(volume_churn, 0)});
  }
  table.print(std::cout);
  std::cout << "# expectation: average bandwidth barely moves with the "
               "increment (Table 1), while churn grows as increments shrink\n";
  return bench::finish_sweep(cli, "bench_ablation_increment", sweep.report);
}
