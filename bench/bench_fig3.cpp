// Figure 3: average bandwidth as the number of network nodes varies
// (100-500 nodes, Waxman alpha = 0.33 with fixed parameters, 3000
// DR-connections loaded).
//
// Expected shape: with the Waxman parameters held fixed, the edge count
// grows rapidly with the node count, so 3000 connections become relatively
// lighter load and the average bandwidth rises toward Bmax; the analytic
// chain tracks the simulation.  The edge-count series (the paper's upper
// dotted line) is printed alongside.
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Figure 3: average bandwidth vs number of nodes "
               "(3000 DR-connections) ==\n";
  bench::print_workload_header(bench::paper_experiment(3000));

  std::vector<std::size_t> sizes{100, 200, 300, 400, 500};
  if (bench::fast_mode()) sizes = {100, 300};
  if (cli.smoke) sizes = {100};

  // Topologies are generated up front (points borrow their graphs).
  std::vector<topology::Graph> graphs;
  graphs.reserve(sizes.size());
  for (const std::size_t nodes : sizes)
    graphs.push_back(topology::generate_waxman({nodes, 0.33, 0.20, true},
                                               bench::kTopologySeed + nodes));
  std::vector<core::SweepPoint> points;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    auto cfg = bench::paper_experiment(3000);
    if (cli.smoke) cfg = bench::smoke_config(cfg);
    points.push_back({&graphs[i], cfg, std::to_string(sizes[i])});
  }
  const auto sweep = core::run_sweep(points, cli.sweep_options());

  util::Table table({"nodes", "edges", "established", "sim Kb/s", "markov Kb/s",
                     "ideal(clamped)", "avg hops"});
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    const auto r = sweep.point_mean(i);
    table.add_row({std::to_string(sizes[i]), std::to_string(graphs[i].num_links()),
                   std::to_string(r.established),
                   util::Table::num(r.sim_mean_bandwidth_kbps),
                   util::Table::num(r.analytic_paper_kbps),
                   util::Table::num(r.ideal_clamped_kbps),
                   util::Table::num(r.mean_hops, 2)});
  }
  table.print(std::cout);
  std::cout << "# expectation: edges grow fast with nodes; bandwidth rises "
               "toward Bmax as the same load spreads thinner\n";
  return bench::finish_sweep(cli, "bench_fig3", sweep.report);
}
