// Figure 3: average bandwidth as the number of network nodes varies
// (100-500 nodes, Waxman alpha = 0.33 with fixed parameters, 3000
// DR-connections loaded).
//
// Expected shape: with the Waxman parameters held fixed, the edge count
// grows rapidly with the node count, so 3000 connections become relatively
// lighter load and the average bandwidth rises toward Bmax; the analytic
// chain tracks the simulation.  The edge-count series (the paper's upper
// dotted line) is printed alongside.
#include <iostream>
#include <vector>

#include "common.hpp"

int main() {
  using namespace eqos;
  std::cout << "== Figure 3: average bandwidth vs number of nodes "
               "(3000 DR-connections) ==\n";
  bench::print_workload_header(bench::paper_experiment(3000));

  std::vector<std::size_t> sizes{100, 200, 300, 400, 500};
  if (bench::fast_mode()) sizes = {100, 300};

  util::Table table({"nodes", "edges", "established", "sim Kb/s", "markov Kb/s",
                     "ideal(clamped)", "avg hops"});
  for (const std::size_t nodes : sizes) {
    const auto g = topology::generate_waxman({nodes, 0.33, 0.20, true},
                                             bench::kTopologySeed + nodes);
    const auto r = core::run_experiment(g, bench::paper_experiment(3000));
    table.add_row({std::to_string(nodes), std::to_string(g.num_links()),
                   std::to_string(r.established),
                   util::Table::num(r.sim_mean_bandwidth_kbps),
                   util::Table::num(r.analytic_paper_kbps),
                   util::Table::num(r.ideal_clamped_kbps),
                   util::Table::num(r.mean_hops, 2)});
  }
  table.print(std::cout);
  std::cout << "# expectation: edges grow fast with nodes; bandwidth rises "
               "toward Bmax as the same load spreads thinner\n";
  return 0;
}
