// Figure 4: effect of the link failure rate on the average bandwidth
// (Random network, 9-state chain, 2000 and 3000 DR-connections,
// gamma swept from 1e-7 to 1e-2 against lambda = mu = 1e-3).
//
// Expected shape: flat.  Failure rates far below the connection arrival /
// termination rates contribute negligibly to the chain's retreat rate
// (gamma*Pf << lambda*Pf), so the curves for both loads stay at their
// gamma = 0 levels; only when gamma approaches lambda (1e-3 and above)
// does the extra retreat pressure become visible.
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Figure 4: average bandwidth vs link failure rate ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());
  bench::print_workload_header(bench::paper_experiment(2000));
  std::cout << "# repair rate fixed at 1e-2 (mean outage 100 time units)\n";

  std::vector<double> rates{1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2};
  if (bench::fast_mode()) rates = {1e-7, 1e-5, 1e-3};
  std::vector<std::size_t> loads{2000, 3000};
  if (cli.smoke) {
    rates = {1e-4};
    loads = {2000};
  }

  std::vector<core::SweepPoint> points;
  for (const std::size_t load : loads) {
    for (const double gamma : rates) {
      auto cfg = bench::paper_experiment(load);
      cfg.workload.failure_rate = gamma;
      cfg.workload.repair_rate = 1e-2;
      if (cli.smoke) cfg = bench::smoke_config(cfg);
      points.push_back({&bench::random_network(), cfg, std::to_string(load)});
    }
  }
  const auto sweep = core::run_sweep(points, cli.sweep_options());

  util::Table table({"failure rate", "load", "sim Kb/s", "markov Kb/s",
                     "failures", "activations", "drops"});
  std::size_t point = 0;
  for (const std::size_t load : loads) {
    for (const double gamma : rates) {
      const auto r = sweep.point_mean(point++);
      table.add_row({util::Table::sci(gamma, 1), std::to_string(load),
                     util::Table::num(r.sim_mean_bandwidth_kbps),
                     util::Table::num(r.analytic_paper_kbps),
                     std::to_string(r.network_stats.failures_injected),
                     std::to_string(r.network_stats.backups_activated),
                     std::to_string(r.network_stats.connections_dropped)});
    }
  }
  table.print(std::cout);
  std::cout << "# expectation: flat across gamma <= 1e-4 (gamma << lambda); "
               "the Avg2000 series sits above Avg3000\n";
  return bench::finish_sweep(cli, "bench_fig4", sweep.report);
}
