// Micro-benchmarks (google-benchmark) for the building blocks: the Markov
// solvers (the SHARPE replacement), topology generation, route search, and
// the network's hot operations.
#include <benchmark/benchmark.h>

#include "markov/bandwidth_chain.hpp"
#include "markov/ctmc.hpp"
#include "matrix/gth.hpp"
#include "matrix/lu.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"
#include "topology/paths.hpp"
#include "topology/waxman.hpp"
#include "util/rng.hpp"

namespace {

using namespace eqos;

matrix::Matrix random_generator_matrix(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  matrix::Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) {
        q(i, j) = rng.uniform(0.01, 1.0);
        q(i, i) -= q(i, j);
      }
  return q;
}

void BM_GthSteadyState(benchmark::State& state) {
  const auto q = random_generator_matrix(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) benchmark::DoNotOptimize(matrix::gth_steady_state(q));
}
BENCHMARK(BM_GthSteadyState)->Arg(5)->Arg(9)->Arg(32)->Arg(128);

void BM_LuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  matrix::Matrix a(n, n);
  matrix::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-1.0, 1.0);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n);
  }
  for (auto _ : state) benchmark::DoNotOptimize(matrix::solve_linear(a, b));
}
BENCHMARK(BM_LuSolve)->Arg(9)->Arg(64)->Arg(256);

void BM_BandwidthChainSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  markov::ChainParameters p;
  p.bmin_kbps = 100.0;
  p.bmax_kbps = 100.0 + 50.0 * static_cast<double>(n - 1);
  p.increment_kbps = 50.0;
  p.p_direct = 0.1;
  p.p_indirect = 0.2;
  matrix::Matrix bottom(n, n);
  matrix::Matrix up(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    bottom(i, 0) = 1.0;
    up(i, n - 1) = 1.0;
  }
  p.arrival_move = bottom;
  p.indirect_move = up;
  p.termination_move = up;
  const markov::BandwidthChain chain(p);
  for (auto _ : state) benchmark::DoNotOptimize(chain.average_bandwidth_kbps());
}
BENCHMARK(BM_BandwidthChainSolve)->Arg(5)->Arg(9)->Arg(17);

void BM_WaxmanGenerate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(topology::generate_waxman({n, 0.33, 0.20, true}, seed++));
}
BENCHMARK(BM_WaxmanGenerate)->Arg(100)->Arg(300);

void BM_ShortestPath(benchmark::State& state) {
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  util::Rng rng(5);
  for (auto _ : state) {
    const auto src = static_cast<topology::NodeId>(rng.index(100));
    auto dst = static_cast<topology::NodeId>(rng.index(99));
    if (dst >= src) ++dst;
    benchmark::DoNotOptimize(topology::shortest_path(g, src, dst));
  }
}
BENCHMARK(BM_ShortestPath);

void BM_RequestConnection(benchmark::State& state) {
  // Steady-state arrival+termination cost at the given population.
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  net::Network net(g, net::NetworkConfig{});
  sim::WorkloadConfig w;
  w.qos = net::ElasticQosSpec{100.0, 500.0, 50.0, 1.0};
  w.seed = 11;
  sim::Simulator sim(net, w);
  sim.populate(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(13);
  for (auto _ : state) {
    const auto src = static_cast<topology::NodeId>(rng.index(100));
    auto dst = static_cast<topology::NodeId>(rng.index(99));
    if (dst >= src) ++dst;
    const auto outcome = net.request_connection(src, dst, w.qos);
    if (outcome.accepted) net.terminate_connection(outcome.id);
  }
}
BENCHMARK(BM_RequestConnection)->Arg(500)->Arg(2000)->Arg(5000)->Unit(benchmark::kMicrosecond);

void BM_FailLinkRepair(benchmark::State& state) {
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  net::Network net(g, net::NetworkConfig{});
  sim::WorkloadConfig w;
  w.qos = net::ElasticQosSpec{100.0, 500.0, 50.0, 1.0};
  w.seed = 11;
  sim::Simulator sim(net, w);
  sim.populate(2000);
  util::Rng rng(17);
  for (auto _ : state) {
    const auto link = static_cast<topology::LinkId>(rng.index(g.num_links()));
    benchmark::DoNotOptimize(net.fail_link(link));
    net.repair_link(link);
  }
}
BENCHMARK(BM_FailLinkRepair)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
