// Micro-benchmarks (google-benchmark) for the building blocks: the Markov
// solvers (the SHARPE replacement), topology generation, route search, and
// the network's hot operations.
//
// Besides the google-benchmark flags, the binary understands:
//   --sweep-json PATH [--threads N] [--reps N]
//       skip the micro-benchmarks and instead measure a 4-point x N-rep
//       run_sweep throughput (parallel vs serial baseline), verify the two
//       produce identical results, and write the report as JSON;
//   --smoke
//       run one tiny micro-benchmark only (the ctest bench-smoke label).
#include <benchmark/benchmark.h>

#include <array>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <string>
#include <type_traits>
#include <vector>

#include "common.hpp"
#include "markov/bandwidth_chain.hpp"
#include "markov/ctmc.hpp"
#include "matrix/gth.hpp"
#include "matrix/lu.hpp"
#include "net/flooding.hpp"
#include "net/network.hpp"
#include "sim/event_queue.hpp"
#include "sim/heap_queue.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "topology/paths.hpp"
#include "topology/waxman.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace {

using namespace eqos;

matrix::Matrix random_generator_matrix(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  matrix::Matrix q(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j)
      if (i != j) {
        q(i, j) = rng.uniform(0.01, 1.0);
        q(i, i) -= q(i, j);
      }
  return q;
}

void BM_GthSteadyState(benchmark::State& state) {
  const auto q = random_generator_matrix(static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) benchmark::DoNotOptimize(matrix::gth_steady_state(q));
}
BENCHMARK(BM_GthSteadyState)->Arg(5)->Arg(9)->Arg(32)->Arg(128);

void BM_LuSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  matrix::Matrix a(n, n);
  matrix::Vector b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = rng.uniform(-1.0, 1.0);
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.uniform(-1.0, 1.0);
    a(i, i) += static_cast<double>(n);
  }
  for (auto _ : state) benchmark::DoNotOptimize(matrix::solve_linear(a, b));
}
BENCHMARK(BM_LuSolve)->Arg(9)->Arg(64)->Arg(256);

void BM_BandwidthChainSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  markov::ChainParameters p;
  p.bmin_kbps = 100.0;
  p.bmax_kbps = 100.0 + 50.0 * static_cast<double>(n - 1);
  p.increment_kbps = 50.0;
  p.p_direct = 0.1;
  p.p_indirect = 0.2;
  matrix::Matrix bottom(n, n);
  matrix::Matrix up(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    bottom(i, 0) = 1.0;
    up(i, n - 1) = 1.0;
  }
  p.arrival_move = bottom;
  p.indirect_move = up;
  p.termination_move = up;
  const markov::BandwidthChain chain(p);
  for (auto _ : state) benchmark::DoNotOptimize(chain.average_bandwidth_kbps());
}
BENCHMARK(BM_BandwidthChainSolve)->Arg(5)->Arg(9)->Arg(17);

void BM_WaxmanGenerate(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state)
    benchmark::DoNotOptimize(topology::generate_waxman({n, 0.33, 0.20, true}, seed++));
}
BENCHMARK(BM_WaxmanGenerate)->Arg(100)->Arg(300);

void BM_ShortestPath(benchmark::State& state) {
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  util::Rng rng(5);
  for (auto _ : state) {
    const auto src = static_cast<topology::NodeId>(rng.index(100));
    auto dst = static_cast<topology::NodeId>(rng.index(99));
    if (dst >= src) ++dst;
    benchmark::DoNotOptimize(topology::shortest_path(g, src, dst));
  }
}
BENCHMARK(BM_ShortestPath);

void BM_RequestConnection(benchmark::State& state) {
  // Steady-state arrival+termination cost at the given population.
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  net::Network net(g, net::NetworkConfig{});
  sim::WorkloadConfig w;
  w.qos = net::ElasticQosSpec{100.0, 500.0, 50.0, 1.0};
  w.seed = 11;
  sim::Simulator sim(net, w);
  sim.populate(static_cast<std::size_t>(state.range(0)));
  util::Rng rng(13);
  for (auto _ : state) {
    const auto src = static_cast<topology::NodeId>(rng.index(100));
    auto dst = static_cast<topology::NodeId>(rng.index(99));
    if (dst >= src) ++dst;
    const auto outcome = net.request_connection(src, dst, w.qos);
    if (outcome.accepted) net.terminate_connection(outcome.id);
  }
}
BENCHMARK(BM_RequestConnection)->Arg(500)->Arg(2000)->Arg(5000)->Unit(benchmark::kMicrosecond);

void BM_FailLinkRepair(benchmark::State& state) {
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  net::Network net(g, net::NetworkConfig{});
  sim::WorkloadConfig w;
  w.qos = net::ElasticQosSpec{100.0, 500.0, 50.0, 1.0};
  w.seed = 11;
  sim::Simulator sim(net, w);
  sim.populate(2000);
  util::Rng rng(17);
  for (auto _ : state) {
    const auto link = static_cast<topology::LinkId>(rng.index(g.num_links()));
    benchmark::DoNotOptimize(net.fail_link(link));
    net.repair_link(link);
  }
}
BENCHMARK(BM_FailLinkRepair)->Unit(benchmark::kMicrosecond);

void BM_LogDisabled(benchmark::State& state) {
  // Guards the deferred-ostringstream LogLine: a disabled statement must not
  // construct a stream or allocate (tens of ns would show up here if the
  // stream came back).
  const auto prev = util::set_log_level(util::LogLevel::kError);
  for (auto _ : state) {
    EQOS_DEBUG() << "connection " << 42 << " retreated to " << 3.5 << " quanta";
  }
  util::set_log_level(prev);
}
BENCHMARK(BM_LogDisabled);

void BM_MetricsDisabled(benchmark::State& state) {
  // The disabled-registry cost of a wired-in counter/histogram: one relaxed
  // load + branch each.  This is what every Network call site pays when obs
  // is off, so it must stay in the low single-digit ns.
  auto counter = obs::MetricsRegistry::global().counter("bench.disabled_counter");
  auto hist = obs::MetricsRegistry::global().histogram("bench.disabled_hist", {1, 2, 4});
  const bool prev = obs::set_metrics_enabled(false);
  for (auto _ : state) {
    counter.inc();
    hist.observe(3.0);
  }
  obs::set_metrics_enabled(prev);
}
BENCHMARK(BM_MetricsDisabled);

void BM_MetricsCounterInc(benchmark::State& state) {
  auto counter = obs::MetricsRegistry::global().counter("bench.enabled_counter");
  const bool prev = obs::set_metrics_enabled(true);
  for (auto _ : state) counter.inc();
  obs::set_metrics_enabled(prev);
}
BENCHMARK(BM_MetricsCounterInc);

void BM_TraceEventDisabled(benchmark::State& state) {
  const bool prev = obs::set_trace_enabled(false);
  for (auto _ : state) {
    obs::trace_event(obs::TraceKind::kArrivalAdmitted, 1, 2, 3.0);
  }
  obs::set_trace_enabled(prev);
}
BENCHMARK(BM_TraceEventDisabled);

void BM_FloodRoute(benchmark::State& state) {
  const auto g = topology::generate_waxman({100, 0.33, 0.20, true}, 7);
  const std::vector<net::LinkState> links(g.num_links(), net::LinkState(10'000.0));
  util::Rng rng(23);
  for (auto _ : state) {
    const auto src = static_cast<topology::NodeId>(rng.index(100));
    auto dst = static_cast<topology::NodeId>(rng.index(99));
    if (dst >= src) ++dst;
    benchmark::DoNotOptimize(net::flood_route(g, links, src, dst, 100.0, 16));
  }
}
BENCHMARK(BM_FloodRoute);

/// Event-engine hold model at `range(0)` pending events: prefill the queue,
/// then in steady state every pop schedules one replacement at a random
/// future offset, so the pending count stays constant.  Q selects the ladder
/// queue (the production engine, tag-dispatched POD events) or the reference
/// binary heap (one closure allocation per event).  items/s == events/s.
template <typename Q>
void BM_EventQueueScheduleRun(benchmark::State& state) {
  const std::size_t pending = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kKind = 1;
  util::Rng rng(42);
  std::array<double, 1024> offsets;
  for (double& d : offsets) d = rng.uniform(0.0, 100.0);

  Q queue;
  std::uint64_t sink = 0;
  constexpr bool kLadder = std::is_same_v<Q, sim::EventQueue>;
  if constexpr (kLadder)
    queue.set_handler(kKind, [&sink](const sim::EventTag& t) { sink += t.a; });

  const auto schedule_one = [&](double t, std::uint64_t payload) {
    if constexpr (kLadder)
      queue.schedule(t, sim::EventTag{kKind, payload, 0});
    else
      queue.schedule(t, sim::EventTag{kKind, payload, 0},
                     [&sink, payload] { sink += payload; });
  };
  for (std::size_t i = 0; i < pending; ++i)
    schedule_one(offsets[i % offsets.size()], i);

  std::size_t tick = 0;
  for (auto _ : state) {
    queue.step();
    schedule_one(queue.now() + offsets[tick++ % offsets.size()], tick);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK_TEMPLATE(BM_EventQueueScheduleRun, sim::EventQueue)
    ->Name("BM_EventQueueScheduleRun/ladder")
    ->RangeMultiplier(10)
    ->Range(1000, 1000000);
BENCHMARK_TEMPLATE(BM_EventQueueScheduleRun, sim::BaselineHeapQueue)
    ->Name("BM_EventQueueScheduleRun/heap")
    ->RangeMultiplier(10)
    ->Range(1000, 1000000);

/// Hold model on the sharded engine: same steady-state pop+reschedule as
/// above, but the pending population is spread over 8 shard-local ladders
/// (locus = tag.a % 8) and every dispatch goes through the K-way front
/// merge.  Replacements are scheduled from inside the handler so each one
/// takes the cross-shard mailbox detour — the worst-case commit path.
void BM_ShardedEngineScheduleRun(benchmark::State& state) {
  const std::size_t pending = static_cast<std::size_t>(state.range(0));
  constexpr std::uint32_t kKind = 1;
  constexpr std::uint32_t kShards = 8;
  util::Rng rng(42);
  std::array<double, 1024> offsets;
  for (double& d : offsets) d = rng.uniform(0.0, 100.0);

  sim::ShardedEngine engine;
  engine.configure(kShards, 25.0, [](const sim::EventTag& t) {
    return static_cast<std::uint32_t>(t.a % kShards);
  });
  std::uint64_t sink = 0;
  std::uint64_t tick = 0;
  const auto schedule_one = [&](double t) {
    engine.schedule(t + offsets[tick % offsets.size()],
                    sim::EventTag{kKind, tick % kShards, tick});
    ++tick;
  };
  engine.set_handler(kKind, [&](const sim::EventTag& t) {
    sink += t.b;
    schedule_one(engine.now());
  });
  for (std::size_t i = 0; i < pending; ++i) schedule_one(0.0);

  for (auto _ : state) engine.step();
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ShardedEngineScheduleRun)
    ->Name("BM_ShardedEngineScheduleRun/shards8")
    ->RangeMultiplier(10)
    ->Range(1000, 1000000);

/// One record of the redistribute candidate scan in the pre-arena layout:
/// the hot quota/pricing fields embedded in a DrConnection-sized record, so
/// each candidate touch drags a full cache line (or two) of cold path state.
struct AosCandidate {
  std::uint32_t extra_quanta;
  std::uint32_t max_extra;
  double increment;
  double utility;
  std::array<char, 184> cold;  // paths, bitsets, backups of a real record
};

/// The redistribute prefilter over `range(0)` candidates — quota test, then
/// price the eligible ones — in array-of-structs (the old per-connection
/// records) vs structure-of-arrays (the network's soa_* ledgers) layout.
template <bool kSoA>
void BM_RedistributeScan(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  util::Rng rng(7);
  std::vector<AosCandidate> aos;
  std::vector<std::uint32_t> extra(n), max_extra(n);
  std::vector<double> increment(n), utility(n);
  aos.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto eq = static_cast<std::uint32_t>(rng.uniform_int(0, 8));
    const auto me = static_cast<std::uint32_t>(rng.uniform_int(0, 8));
    const double inc = rng.uniform(10.0, 100.0);
    const double ut = rng.uniform(0.1, 2.0);
    aos.push_back(AosCandidate{eq, me, inc, ut, {}});
    extra[i] = eq;
    max_extra[i] = me;
    increment[i] = inc;
    utility[i] = ut;
  }
  for (auto _ : state) {
    double gain = 0.0;
    std::size_t eligible = 0;
    if constexpr (kSoA) {
      for (std::size_t i = 0; i < n; ++i) {
        if (extra[i] >= max_extra[i]) continue;
        gain += increment[i] * utility[i];
        ++eligible;
      }
    } else {
      for (const AosCandidate& c : aos) {
        if (c.extra_quanta >= c.max_extra) continue;
        gain += c.increment * c.utility;
        ++eligible;
      }
    }
    benchmark::DoNotOptimize(gain);
    benchmark::DoNotOptimize(eligible);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK_TEMPLATE(BM_RedistributeScan, false)
    ->Name("BM_RedistributeScan/aos")
    ->Arg(4096)
    ->Arg(65536);
BENCHMARK_TEMPLATE(BM_RedistributeScan, true)
    ->Name("BM_RedistributeScan/soa")
    ->Arg(4096)
    ->Arg(65536);

/// --sweep-json: measure run_sweep throughput (4 load points x reps) at the
/// requested thread count against a 1-thread baseline of the same points,
/// check the two runs produced identical results, and write the JSON report.
int run_sweep_measurement(const std::string& path, std::size_t threads,
                          std::size_t reps, bool smoke) {
  std::vector<core::SweepPoint> points;
  for (const std::size_t load : {500u, 1000u, 1500u, 2000u}) {
    auto cfg = bench::paper_experiment(load);
    if (smoke) cfg = bench::smoke_config(cfg);
    points.push_back({&bench::random_network(), cfg, std::to_string(load)});
  }
  core::SweepOptions par;
  par.threads = threads;
  par.reps = reps;
  const auto parallel = core::run_sweep(points, par);
  core::SweepOptions ser;
  ser.threads = 1;
  ser.reps = reps;
  const auto serial = core::run_sweep(points, ser);

  for (std::size_t i = 0; i < parallel.results.size(); ++i) {
    const auto& a = parallel.results[i];
    const auto& b = serial.results[i];
    if (a.established != b.established ||
        a.sim_mean_bandwidth_kbps != b.sim_mean_bandwidth_kbps ||
        a.analytic_paper_kbps != b.analytic_paper_kbps) {
      std::cerr << "bench_micro: thread-count determinism violated at slot " << i
                << "\n";
      return 1;
    }
  }

  core::SweepReport report = parallel.report;
  report.serial_wall_seconds = serial.report.wall_seconds;
  report.speedup_vs_serial = report.wall_seconds > 0.0
                                 ? serial.report.wall_seconds / report.wall_seconds
                                 : 0.0;
  std::cout << "sweep: " << report.points << " points x " << report.reps
            << " reps, " << report.threads << " thread(s): "
            << report.wall_seconds << " s (serial " << report.serial_wall_seconds
            << " s, speedup " << report.speedup_vs_serial
            << "x); results identical across thread counts\n";
  if (!core::write_sweep_json(path, "bench_micro", report)) {
    std::cerr << "bench_micro: cannot write " << path << "\n";
    return 1;
  }
  std::cout << "wrote " << path << "\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sweep_json;
  std::size_t threads = 0;  // hardware concurrency by default for the sweep
  std::size_t reps = 4;
  bool smoke = false;
  std::vector<char*> fwd;
  fwd.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sweep-json" && i + 1 < argc)
      sweep_json = argv[++i];
    else if (arg == "--threads" && i + 1 < argc)
      threads = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
    else if (arg == "--reps" && i + 1 < argc)
      reps = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10)));
    else
      fwd.push_back(argv[i]);
  }
  for (char* a : fwd)
    if (std::strcmp(a, "--smoke") == 0) smoke = true;
  if (smoke)
    fwd.erase(std::remove_if(fwd.begin(), fwd.end(),
                             [](char* a) { return std::strcmp(a, "--smoke") == 0; }),
              fwd.end());

  if (!sweep_json.empty()) return run_sweep_measurement(sweep_json, threads, reps, smoke);

  static char filter_flag[] = "--benchmark_filter=BM_GthSteadyState/9";
  if (smoke) fwd.push_back(filter_flag);
  int fwd_argc = static_cast<int>(fwd.size());
  benchmark::Initialize(&fwd_argc, fwd.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
