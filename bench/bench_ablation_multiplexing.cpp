// Ablation A1: backup-channel multiplexing on vs off.
//
// The paper argues (Section 2.1.2) that overbooking backup reservations is
// what keeps the backup-channel scheme affordable.  This ablation measures
// the cost of turning it off: fewer admitted connections and a larger share
// of capacity frozen in backup reservations, at equal offered load.
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "net/network.hpp"

namespace {

struct Row {
  std::size_t established = 0;
  double sim_kbps = 0.0;
  double backup_share = 0.0;  // mean fraction of link capacity reserved for backups
  double protected_fraction = 0.0;
};

Row run(const eqos::topology::Graph& g, std::size_t tried, bool multiplexing,
        double capacity, std::uint64_t seed, bool smoke) {
  auto cfg = eqos::bench::paper_experiment(tried);
  if (smoke) cfg = eqos::bench::smoke_config(cfg);
  cfg.network.backup_multiplexing = multiplexing;
  cfg.network.link_capacity_kbps = capacity;
  cfg.workload.seed = seed;

  // Run the establishment phase manually so the reservation share can be
  // read off the links afterwards.
  eqos::net::Network net(g, cfg.network);
  eqos::sim::Simulator sim(net, cfg.workload);
  Row row;
  row.established = sim.populate(cfg.target_connections);
  sim.run_events(cfg.measure_events / 2);
  double share = 0.0;
  for (eqos::topology::LinkId l = 0; l < g.num_links(); ++l)
    share += net.link_state(l).backup_reserved() / net.link_state(l).capacity();
  row.backup_share = share / static_cast<double>(g.num_links());
  row.sim_kbps = net.mean_reserved_kbps();
  row.protected_fraction = net.protected_fraction();
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Ablation A1: backup multiplexing (overbooking) on/off ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());
  std::cout << "# tight 3 Mb/s links make the reservation cost visible\n";

  std::vector<std::size_t> loads{500, 1000, 1500, 2000};
  if (bench::fast_mode()) loads = {500, 1500};
  if (cli.smoke) loads = {500};

  // Grid: point = (load, mux on/off), run across the CLI's workers.
  core::SweepReport report;
  const auto rows = bench::run_point_grid(
      cli, "bench_ablation_multiplexing", loads.size() * 2, report, [&](std::size_t point, std::size_t rep) {
        const std::size_t n = loads[point / 2];
        const bool mux = point % 2 == 0;
        return run(bench::random_network(), n, mux, 3000.0,
                   core::sweep_seed(bench::kWorkloadSeed, point, rep), cli.smoke);
      });

  util::Table table({"tried", "mux est.", "nomux est.", "mux Kb/s", "nomux Kb/s",
                     "mux bkup share", "nomux bkup share"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto mean = [&](std::size_t point, auto field) {
      return bench::rep_mean(rows, point, cli.reps,
                             [&](const Row& r) { return r.*field; });
    };
    const std::size_t pm = i * 2, pn = i * 2 + 1;
    table.add_row(
        {std::to_string(loads[i]),
         std::to_string(static_cast<std::size_t>(
             std::llround(mean(pm, &Row::established)))),
         std::to_string(static_cast<std::size_t>(
             std::llround(mean(pn, &Row::established)))),
         util::Table::num(mean(pm, &Row::sim_kbps)),
         util::Table::num(mean(pn, &Row::sim_kbps)),
         util::Table::num(mean(pm, &Row::backup_share), 3),
         util::Table::num(mean(pn, &Row::backup_share), 3)});
  }
  table.print(std::cout);
  std::cout << "# expectation: multiplexing admits more connections and "
               "freezes a smaller capacity share in backup reservations\n";
  return bench::finish_sweep(cli, "bench_ablation_multiplexing", report);
}
