// Ablation A1: backup-channel multiplexing on vs off.
//
// The paper argues (Section 2.1.2) that overbooking backup reservations is
// what keeps the backup-channel scheme affordable.  This ablation measures
// the cost of turning it off: fewer admitted connections and a larger share
// of capacity frozen in backup reservations, at equal offered load.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "net/network.hpp"

namespace {

struct Row {
  std::size_t established = 0;
  double sim_kbps = 0.0;
  double backup_share = 0.0;  // mean fraction of link capacity reserved for backups
  double protected_fraction = 0.0;
};

Row run(const eqos::topology::Graph& g, std::size_t tried, bool multiplexing,
        double capacity) {
  auto cfg = eqos::bench::paper_experiment(tried);
  cfg.network.backup_multiplexing = multiplexing;
  cfg.network.link_capacity_kbps = capacity;

  // Run the establishment phase manually so the reservation share can be
  // read off the links afterwards.
  eqos::net::Network net(g, cfg.network);
  eqos::sim::Simulator sim(net, cfg.workload);
  Row row;
  row.established = sim.populate(tried);
  sim.run_events(cfg.measure_events / 2);
  double share = 0.0;
  for (eqos::topology::LinkId l = 0; l < g.num_links(); ++l)
    share += net.link_state(l).backup_reserved() / net.link_state(l).capacity();
  row.backup_share = share / static_cast<double>(g.num_links());
  row.sim_kbps = net.mean_reserved_kbps();
  row.protected_fraction = net.protected_fraction();
  return row;
}

}  // namespace

int main() {
  using namespace eqos;
  std::cout << "== Ablation A1: backup multiplexing (overbooking) on/off ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());
  std::cout << "# tight 3 Mb/s links make the reservation cost visible\n";

  std::vector<std::size_t> loads{500, 1000, 1500, 2000};
  if (bench::fast_mode()) loads = {500, 1500};

  util::Table table({"tried", "mux est.", "nomux est.", "mux Kb/s", "nomux Kb/s",
                     "mux bkup share", "nomux bkup share"});
  for (const std::size_t n : loads) {
    const Row mux = run(bench::random_network(), n, true, 3000.0);
    const Row nomux = run(bench::random_network(), n, false, 3000.0);
    table.add_row({std::to_string(n), std::to_string(mux.established),
                   std::to_string(nomux.established), util::Table::num(mux.sim_kbps),
                   util::Table::num(nomux.sim_kbps),
                   util::Table::num(mux.backup_share, 3),
                   util::Table::num(nomux.backup_share, 3)});
  }
  table.print(std::cout);
  std::cout << "# expectation: multiplexing admits more connections and "
               "freezes a smaller capacity share in backup reservations\n";
  return 0;
}
