// Ablation A2: adaptation scheme — coefficient (utility-proportional) vs
// max-utility (highest utility monopolizes).
//
// Section 2.2 describes both schemes and notes the max-utility scheme "allows
// a real-time channel to monopolize all the extra resources even when its
// utility is slightly higher than the others."  This ablation quantifies
// that: connections are split into a high-utility and a low-utility class
// and the per-class average bandwidth plus Jain's fairness index over the
// elastic grants are reported for both schemes.
#include <iostream>
#include <vector>

#include "common.hpp"
#include "net/network.hpp"
#include "util/rng.hpp"

namespace {

struct Row {
  double high_kbps = 0.0;
  double low_kbps = 0.0;
  double jain = 1.0;
};

Row run(const eqos::topology::Graph& g, std::size_t tried,
        eqos::net::AdaptationScheme scheme, std::uint64_t seed) {
  using namespace eqos;
  net::NetworkConfig ncfg;
  ncfg.adaptation = scheme;
  net::Network net(g, ncfg);
  util::Rng rng(seed);

  // Alternate the two utility classes deterministically.
  std::vector<net::ConnectionId> high;
  std::vector<net::ConnectionId> low;
  for (std::size_t i = 0; i < tried; ++i) {
    const auto src = static_cast<topology::NodeId>(rng.index(g.num_nodes()));
    auto dst = static_cast<topology::NodeId>(rng.index(g.num_nodes() - 1));
    if (dst >= src) ++dst;
    net::ElasticQosSpec qos = bench::paper_qos();
    const bool is_high = (i % 2 == 0);
    qos.utility = is_high ? 2.0 : 1.0;
    const auto outcome = net.request_connection(src, dst, qos);
    if (outcome.accepted) (is_high ? high : low).push_back(outcome.id);
  }

  Row row;
  double sum_high = 0.0;
  for (auto id : high) sum_high += net.connection(id).reserved_kbps();
  double sum_low = 0.0;
  for (auto id : low) sum_low += net.connection(id).reserved_kbps();
  row.high_kbps = high.empty() ? 0.0 : sum_high / static_cast<double>(high.size());
  row.low_kbps = low.empty() ? 0.0 : sum_low / static_cast<double>(low.size());

  // Jain's index over elastic grants (+1 quantum so zeros keep it defined).
  double s1 = 0.0;
  double s2 = 0.0;
  std::size_t n = 0;
  for (auto id : net.active_ids()) {
    const double x = static_cast<double>(net.connection(id).extra_quanta) + 1.0;
    s1 += x;
    s2 += x * x;
    ++n;
  }
  if (n > 0) row.jain = (s1 * s1) / (static_cast<double>(n) * s2);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Ablation A2: coefficient vs max-utility adaptation "
               "(utility classes 2.0 / 1.0, alternating) ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());

  std::vector<std::size_t> loads{1000, 2000, 4000};
  if (bench::fast_mode()) loads = {1000, 3000};
  if (cli.smoke) loads = {500};

  // Grid: point = (load, scheme), run across the CLI's workers.
  core::SweepReport report;
  const auto rows = bench::run_point_grid(
      cli, "bench_ablation_adaptation", loads.size() * 2, report, [&](std::size_t point, std::size_t rep) {
        const std::size_t n = loads[point / 2];
        const auto scheme = point % 2 == 0 ? net::AdaptationScheme::kCoefficient
                                           : net::AdaptationScheme::kMaxUtility;
        return run(bench::random_network(), n, scheme,
                   core::sweep_seed(99, point, rep));
      });

  util::Table table({"tried", "scheme", "high-util Kb/s", "low-util Kb/s",
                     "Jain index"});
  const auto mean = [&](std::size_t point, auto field) {
    return bench::rep_mean(rows, point, cli.reps,
                           [&](const Row& r) { return r.*field; });
  };
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const std::size_t pc = i * 2, pm = i * 2 + 1;
    table.add_row({std::to_string(loads[i]), "coefficient",
                   util::Table::num(mean(pc, &Row::high_kbps)),
                   util::Table::num(mean(pc, &Row::low_kbps)),
                   util::Table::num(mean(pc, &Row::jain), 3)});
    table.add_row({"", "max-utility", util::Table::num(mean(pm, &Row::high_kbps)),
                   util::Table::num(mean(pm, &Row::low_kbps)),
                   util::Table::num(mean(pm, &Row::jain), 3)});
  }
  table.print(std::cout);
  std::cout << "# expectation: both favor high utility; max-utility is far "
               "harsher on the low class (lower Jain index)\n";
  return bench::finish_sweep(cli, "bench_ablation_adaptation", report);
}
