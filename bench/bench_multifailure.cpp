// Multi-failure dependability: SRLG burst size vs graceful degradation
// (Random network, 9-state chain, correlated failures via the fault
// injector's scenario engine).
//
// The paper's dependability argument rests on the single-link-failure
// scenario; this bench measures what happens beyond it.  The link set is
// partitioned into shared-risk link groups of size k and bursts fail one
// whole group at a time, with the total link-failure intensity held
// constant across k (burst rate = intensity / k).  Larger k therefore means
// the *same* number of failed links but arriving correlated — exactly the
// case backup multiplexing's scenario-max reservation does not cover.
//
// Expected shape: activations stay roughly flat (the first link of a burst
// is the covered single-failure case) while unprotected victims, degraded
// re-establishments, and drops grow with k; the graceful-degradation policy
// (SecondFailurePolicy::kReestablish) converts most would-be drops into
// re-established pairs or degraded single paths.
//
// Pass --audit to run the full invariant audit (internal + external ledger
// recomputation) after every injected fault event.
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/audit.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace eqos;
  bool audit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--audit") == 0) audit = true;
  }

  std::cout << "== Multi-failure: SRLG burst size vs dependability ==\n";
  const topology::Graph& graph = bench::random_network();
  bench::print_graph_header("Random (Waxman)", graph);
  bench::print_workload_header(bench::paper_experiment(2000));
  std::cout << "# link-failure intensity 1e-4 links/time (burst rate = intensity/k), "
               "exponential repair 1e-2"
            << (audit ? "; auditing every fault event" : "") << "\n";

  std::vector<std::size_t> sizes{1, 2, 3, 4, 6, 8};
  if (bench::fast_mode()) sizes = {1, 3, 6};
  const std::size_t warmup = bench::fast_mode() ? 200 : 500;
  const std::size_t measure = bench::fast_mode() ? 1000 : 6000;
  const double intensity = 1e-4;

  util::Table table({"srlg k", "bursts", "activated", "victims", "pair", "degraded",
                     "dropped", "p-hit", "b-hit", "dbl-hit", "unprot %", "sim Kb/s"});
  std::size_t audit_checks = 0;
  for (const std::size_t k : sizes) {
    net::NetworkConfig ncfg;
    ncfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
    net::Network network(graph, ncfg);

    sim::WorkloadConfig wl;
    wl.qos = bench::paper_qos();
    wl.arrival_rate = 1e-3;
    wl.termination_rate = 1e-3;
    wl.failure_rate = 0.0;  // all failures come from the scenario
    wl.seed = bench::kWorkloadSeed;
    sim::Simulator sim(network, wl);
    sim.populate(2000);

    // Partition a shuffled link list into SRLGs of size k.
    std::vector<topology::LinkId> links(graph.num_links());
    std::iota(links.begin(), links.end(), topology::LinkId{0});
    util::Rng shuffle_rng(bench::kTopologySeed ^ k);
    shuffle_rng.shuffle(links);
    fault::FaultScenario scenario;
    for (std::size_t i = 0; i < links.size(); i += k) {
      const std::size_t end = std::min(i + k, links.size());
      scenario.define_group("srlg" + std::to_string(i / k),
                            {links.begin() + static_cast<std::ptrdiff_t>(i),
                             links.begin() + static_cast<std::ptrdiff_t>(end)});
    }
    scenario.stochastic().group_failure_rate = intensity / static_cast<double>(k);
    scenario.stochastic().repair.kind = fault::RepairDistribution::kExponential;
    scenario.stochastic().repair.rate = 1e-2;
    scenario.stochastic().auto_repair = true;
    sim.load_scenario(scenario);

    fault::InvariantAuditor auditor(network);
    if (audit) sim.injector().set_auditor(&auditor);

    sim.run_events(warmup);
    sim::TransitionRecorder recorder(wl.qos, sim.now());
    sim.attach_recorder(&recorder);
    sim.run_events(measure);
    const sim::ModelEstimates est = recorder.estimates(sim.now(), network);
    const net::NetworkStats& ns = network.stats();
    audit_checks += auditor.checks_run();

    table.add_row({std::to_string(k), std::to_string(sim.injector().stats().burst_failures),
                   std::to_string(ns.backups_activated),
                   std::to_string(ns.unprotected_victims),
                   std::to_string(ns.reestablished_pair),
                   std::to_string(ns.reestablished_degraded),
                   std::to_string(ns.drop_causes.total()),
                   std::to_string(ns.drop_causes.primary_hit),
                   std::to_string(ns.drop_causes.backup_hit_while_active),
                   std::to_string(ns.drop_causes.double_hit),
                   util::Table::num(100.0 * est.unprotected_fraction, 3),
                   util::Table::num(est.mean_bandwidth_kbps)});
  }
  table.print(std::cout);
  if (audit) std::cout << "# audit checks passed: " << audit_checks << "\n";
  std::cout << "# expectation: victims / degraded / drops grow with k at constant "
               "link-failure intensity; kReestablish converts most strandings into "
               "pair or degraded re-establishments\n";
  return 0;
}
