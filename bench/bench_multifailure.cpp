// Multi-failure dependability: SRLG burst size vs graceful degradation
// (Random network, 9-state chain, correlated failures via the fault
// injector's scenario engine).
//
// The paper's dependability argument rests on the single-link-failure
// scenario; this bench measures what happens beyond it.  The link set is
// partitioned into shared-risk link groups of size k and bursts fail one
// whole group at a time, with the total link-failure intensity held
// constant across k (burst rate = intensity / k).  Larger k therefore means
// the *same* number of failed links but arriving correlated — exactly the
// case backup multiplexing's scenario-max reservation does not cover.
//
// Expected shape: activations stay roughly flat (the first link of a burst
// is the covered single-failure case) while unprotected victims, degraded
// re-establishments, and drops grow with k; the graceful-degradation policy
// (SecondFailurePolicy::kReestablish) converts most would-be drops into
// re-established pairs or degraded single paths.
//
// Pass --audit to run the full invariant audit (internal + external ledger
// recomputation) after every injected fault event.
#include <cmath>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/audit.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "sim/simulator.hpp"

namespace {

struct Row {
  std::size_t bursts = 0;
  std::size_t activated = 0;
  std::size_t victims = 0;
  std::size_t pair = 0;
  std::size_t degraded = 0;
  std::size_t dropped = 0;
  std::size_t p_hit = 0;
  std::size_t b_hit = 0;
  std::size_t dbl_hit = 0;
  double unprotected_pct = 0.0;
  double sim_kbps = 0.0;
  std::size_t audit_checks = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace eqos;
  // Strip the bench-local --audit flag before the shared CLI parse.
  bool audit = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--audit") == 0)
      audit = true;
    else
      args.push_back(argv[i]);
  }
  const bench::BenchCli cli =
      bench::parse_cli(static_cast<int>(args.size()), args.data());

  std::cout << "== Multi-failure: SRLG burst size vs dependability ==\n";
  const topology::Graph& graph = bench::random_network();
  bench::print_graph_header("Random (Waxman)", graph);
  bench::print_workload_header(bench::paper_experiment(2000));
  std::cout << "# link-failure intensity 1e-4 links/time (burst rate = intensity/k), "
               "exponential repair 1e-2"
            << (audit ? "; auditing every fault event" : "") << "\n";

  std::vector<std::size_t> sizes{1, 2, 3, 4, 6, 8};
  if (bench::fast_mode()) sizes = {1, 3, 6};
  if (cli.smoke) sizes = {2};
  const std::size_t populate = cli.smoke ? 300 : 2000;
  const std::size_t warmup = cli.smoke ? 30 : (bench::fast_mode() ? 200 : 500);
  const std::size_t measure = cli.smoke ? 100 : (bench::fast_mode() ? 1000 : 6000);
  const double intensity = 1e-4;

  core::SweepReport report;
  const auto rows = bench::run_point_grid(
      cli, "bench_multifailure", sizes.size(), report, [&](std::size_t point, std::size_t rep) {
        const std::size_t k = sizes[point];
        net::NetworkConfig ncfg;
        ncfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
        net::Network network(graph, ncfg);

        sim::WorkloadConfig wl;
        wl.qos = bench::paper_qos();
        wl.arrival_rate = 1e-3;
        wl.termination_rate = 1e-3;
        wl.failure_rate = 0.0;  // all failures come from the scenario
        wl.seed = core::sweep_seed(bench::kWorkloadSeed, point, rep);
        sim::Simulator sim(network, wl);
        sim.populate(populate);

        // Partition a shuffled link list into SRLGs of size k.
        std::vector<topology::LinkId> links(graph.num_links());
        std::iota(links.begin(), links.end(), topology::LinkId{0});
        util::Rng shuffle_rng(bench::kTopologySeed ^ k);
        shuffle_rng.shuffle(links);
        fault::FaultScenario scenario;
        for (std::size_t i = 0; i < links.size(); i += k) {
          const std::size_t end = std::min(i + k, links.size());
          scenario.define_group("srlg" + std::to_string(i / k),
                                {links.begin() + static_cast<std::ptrdiff_t>(i),
                                 links.begin() + static_cast<std::ptrdiff_t>(end)});
        }
        scenario.stochastic().group_failure_rate =
            intensity / static_cast<double>(k);
        scenario.stochastic().repair.kind = fault::RepairDistribution::kExponential;
        scenario.stochastic().repair.rate = 1e-2;
        scenario.stochastic().auto_repair = true;
        sim.load_scenario(scenario);

        fault::InvariantAuditor auditor(network);
        if (audit) sim.injector().set_auditor(&auditor);

        sim.run_events(warmup);
        sim::TransitionRecorder recorder(wl.qos, sim.now());
        sim.attach_recorder(&recorder);
        sim.run_events(measure);
        const sim::ModelEstimates est = recorder.estimates(sim.now(), network);
        const net::NetworkStats& ns = network.stats();

        Row row;
        row.bursts = sim.injector().stats().burst_failures;
        row.activated = ns.backups_activated;
        row.victims = ns.unprotected_victims;
        row.pair = ns.reestablished_pair;
        row.degraded = ns.reestablished_degraded;
        row.dropped = ns.drop_causes.total();
        row.p_hit = ns.drop_causes.primary_hit;
        row.b_hit = ns.drop_causes.backup_hit_while_active;
        row.dbl_hit = ns.drop_causes.double_hit;
        row.unprotected_pct = 100.0 * est.unprotected_fraction;
        row.sim_kbps = est.mean_bandwidth_kbps;
        row.audit_checks = auditor.checks_run();
        return row;
      });

  util::Table table({"srlg k", "bursts", "activated", "victims", "pair", "degraded",
                     "dropped", "p-hit", "b-hit", "dbl-hit", "unprot %", "sim Kb/s"});
  const auto mean = [&](std::size_t point, auto field) {
    return bench::rep_mean(rows, point, cli.reps,
                           [&](const Row& r) { return r.*field; });
  };
  const auto count = [&](std::size_t point, auto field) {
    return std::to_string(
        static_cast<std::size_t>(std::llround(mean(point, field))));
  };
  std::size_t audit_checks = 0;
  for (const Row& r : rows) audit_checks += r.audit_checks;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.add_row({std::to_string(sizes[i]), count(i, &Row::bursts),
                   count(i, &Row::activated), count(i, &Row::victims),
                   count(i, &Row::pair), count(i, &Row::degraded),
                   count(i, &Row::dropped), count(i, &Row::p_hit),
                   count(i, &Row::b_hit), count(i, &Row::dbl_hit),
                   util::Table::num(mean(i, &Row::unprotected_pct), 3),
                   util::Table::num(mean(i, &Row::sim_kbps))});
  }
  table.print(std::cout);
  if (audit) std::cout << "# audit checks passed: " << audit_checks << "\n";
  std::cout << "# expectation: victims / degraded / drops grow with k at constant "
               "link-failure intensity; kReestablish converts most strandings into "
               "pair or degraded re-establishments\n";
  return bench::finish_sweep(cli, "bench_multifailure", report);
}
