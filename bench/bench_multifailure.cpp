// Multi-failure dependability: SRLG burst size vs graceful degradation
// (Random network, 9-state chain, correlated failures via the fault
// injector's scenario engine).
//
// The paper's dependability argument rests on the single-link-failure
// scenario; this bench measures what happens beyond it.  The link set is
// partitioned into shared-risk link groups of size k and bursts fail one
// whole group at a time, with the total link-failure intensity held
// constant across k (burst rate = intensity / k).  Larger k therefore means
// the *same* number of failed links but arriving correlated — exactly the
// case backup multiplexing's scenario-max reservation does not cover.
//
// Expected shape: activations stay roughly flat (the first link of a burst
// is the covered single-failure case) while unprotected victims, degraded
// re-establishments, and drops grow with k; the graceful-degradation policy
// (SecondFailurePolicy::kReestablish) converts most would-be drops into
// re-established pairs or degraded single paths.
//
// Pass --audit to run the full invariant audit (internal + external ledger
// recomputation) after every injected fault event.
//
// Pass --schemes to run the backup-scheme survivability ablation instead:
// every BackupScheme (single / dual-disjoint / segment) under (a) Poisson
// SRLG bursts and (b) a budgeted adversary that fails the worst 2-group
// combination against the live connection state, with matched outage
// budgets.  Reports dual-failure survivability (survived-via-backup-set,
// drops) and the p50/p95/p99 time-to-reroute recovery SLA, plus the tariff
// revenue each scheme retains.  With --json, entries are keyed
// "bench_multifailure/<scheme>" and carry the percentiles in an "extra"
// section.
//
// Pass --recovery-protocol to run the event-driven recovery control plane
// ablation instead: every scheme under ideal (p_loss = 0) vs lossy
// (p_loss = 0.2) signaling at matched failure budgets, reporting *measured*
// TTR and blackout percentiles plus signaling send/loss/retry and
// deadline-miss counts.  JSON entries are keyed
// "bench_multifailure/rp_<scheme>".
#include <cmath>
#include <cstring>
#include <iostream>
#include <numeric>
#include <string>
#include <vector>

#include "common.hpp"
#include "fault/adversary.hpp"
#include "fault/audit.hpp"
#include "fault/injector.hpp"
#include "fault/scenario.hpp"
#include "net/revenue.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace {

struct Row {
  std::size_t bursts = 0;
  std::size_t activated = 0;
  std::size_t victims = 0;
  std::size_t pair = 0;
  std::size_t degraded = 0;
  std::size_t dropped = 0;
  std::size_t p_hit = 0;
  std::size_t b_hit = 0;
  std::size_t dbl_hit = 0;
  double unprotected_pct = 0.0;
  double sim_kbps = 0.0;
  std::size_t audit_checks = 0;
};

/// One (scheme, fault process) cell of the --schemes ablation.  All-scalar
/// so grid checkpointing can byte-copy it.
struct SchemeRow {
  std::size_t attacks = 0;       ///< bursts fired (poisson) or attacks (adversary)
  std::size_t audit_checks = 0;  ///< invariant audits passed (--audit)
  std::size_t activated = 0;
  std::size_t survived_set = 0;  ///< victims saved by a sibling channel
  std::size_t victims = 0;       ///< unprotected victims
  std::size_t pair = 0;
  std::size_t degraded = 0;
  std::size_t dropped = 0;
  double p50 = 0.0;              ///< time-to-reroute percentiles
  double p95 = 0.0;
  double p99 = 0.0;
  double revenue = 0.0;          ///< linear tariff over surviving reservations
  double sim_kbps = 0.0;
};

/// One (scheme, signaling variant) cell of the --recovery-protocol ablation.
struct RpRow {
  std::size_t attacks = 0;        ///< SRLG bursts fired
  std::size_t audit_checks = 0;
  std::size_t severed = 0;        ///< victims handed to the recovery plane
  std::size_t signals = 0;        ///< signaling messages sent
  std::size_t losses = 0;         ///< signaling messages lost
  std::size_t retries = 0;        ///< retry timeouts scheduled
  std::size_t fallbacks = 0;      ///< fell back to the next covering channel
  std::size_t deadline_miss = 0;  ///< victims dropped at the recovery deadline
  std::size_t recovered = 0;      ///< commits + rescues
  std::size_t dropped = 0;        ///< all drop causes
  std::size_t victims = 0;        ///< unprotected victims (every severance)
  std::size_t events = 0;         ///< churn events executed (for events/s)
  double p50 = 0.0;               ///< measured time-to-reroute percentiles
  double p95 = 0.0;
  double p99 = 0.0;
  double b50 = 0.0;               ///< blackout-time percentiles (incl. drops)
  double b95 = 0.0;
  double b99 = 0.0;
  double revenue = 0.0;
};

constexpr std::size_t kSrlgSize = 3;

/// Partitions a shuffled link list into SRLGs of size k (the bench's
/// canonical correlated-failure structure).
eqos::fault::FaultScenario partition_srlgs(const eqos::topology::Graph& graph,
                                           std::size_t k) {
  using namespace eqos;
  std::vector<topology::LinkId> links(graph.num_links());
  std::iota(links.begin(), links.end(), topology::LinkId{0});
  util::Rng shuffle_rng(bench::kTopologySeed ^ k);
  shuffle_rng.shuffle(links);
  fault::FaultScenario scenario;
  for (std::size_t i = 0; i < links.size(); i += k) {
    const std::size_t end = std::min(i + k, links.size());
    scenario.define_group("srlg" + std::to_string(i / k),
                          {links.begin() + static_cast<std::ptrdiff_t>(i),
                           links.begin() + static_cast<std::ptrdiff_t>(end)});
  }
  return scenario;
}

/// The --recovery-protocol ablation: every backup scheme under the
/// event-driven recovery control plane, ideal signaling (p_loss = 0) vs
/// lossy signaling (p_loss = 0.2) at matched failure budgets — both
/// variants replay the identical Poisson SRLG burst sequence (same
/// scenario, same per-scheme seeds), so every difference in the reported
/// TTR / blackout / drop numbers is attributable to signaling losses.
/// All times are *measured* simulated elapsed times (severance to commit),
/// not the legacy analytic detect + per-hop formulas.
int run_recovery_protocol(const eqos::bench::BenchCli& cli, bool audit) {
  using namespace eqos;
  const topology::Graph& graph = bench::random_network();
  std::cout << "== Multi-failure: event-driven recovery protocol "
               "(ideal vs lossy signaling) ==\n";
  bench::print_graph_header("Random (Waxman)", graph);
  bench::print_workload_header(bench::paper_experiment(2000));
  std::cout << "# SRLGs of " << kSrlgSize << " links; Poisson bursts (group rate "
               "0.01, repair rate 0.025), matched across variants; detect "
               "U[0.1,0.5], timeout 0.5 x2 backoff, retry cap 3, deadline 8; "
               "lossy variant p_loss 0.2\n";

  const net::BackupScheme schemes[3] = {net::BackupScheme::kSingle,
                                        net::BackupScheme::kDualDisjoint,
                                        net::BackupScheme::kSegment};
  const char* scheme_names[3] = {"single", "dual", "segment"};
  const char* variant_names[2] = {"ideal", "lossy"};
  const std::size_t populate = cli.smoke ? 300 : (bench::fast_mode() ? 800 : 2000);
  const std::size_t warmup = cli.smoke ? 30 : (bench::fast_mode() ? 200 : 500);
  const std::size_t attacks = cli.smoke ? 2 : (bench::fast_mode() ? 5 : 15);
  const double spacing = 100.0;
  const double outage = 40.0;
  const std::size_t n_points = 6;  // 3 schemes x {ideal, lossy}

  core::SweepReport report;
  const auto rows = bench::run_point_grid(
      cli, "bench_multifailure_recovery", n_points, report,
      [&](std::size_t point, std::size_t rep) {
        const std::size_t si = point / 2;
        const bool lossy = (point % 2) != 0;

        net::NetworkConfig ncfg;
        ncfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
        ncfg.backup_scheme = schemes[si];
        ncfg.srlg_policy = net::SrlgPolicy::kAvoid;
        ncfg.recovery_protocol = true;
        ncfg.recovery_signal_loss_prob = lossy ? 0.2 : 0.0;
        net::Network network(graph, ncfg);

        sim::WorkloadConfig wl;
        wl.qos = bench::paper_qos();
        wl.arrival_rate = 1e-3;
        wl.termination_rate = 1e-3;
        wl.failure_rate = 0.0;  // all failures come from the scenario
        // Seeded per (scheme, rep) — NOT per variant — so ideal and lossy
        // replay the identical failure sequence (the matched budget).
        wl.seed = core::sweep_seed(bench::kWorkloadSeed, si, rep);
        sim::Simulator sim(network, wl,
                           sim::make_shard_plan(graph,
                                                static_cast<std::uint32_t>(cli.shards),
                                                ncfg,
                                                util::Rng::substream_seed(
                                                    wl.seed, 0x73686172647325ULL)));
        sim.populate(populate);

        fault::FaultScenario scenario = partition_srlgs(graph, kSrlgSize);
        scenario.stochastic().group_failure_rate = 1.0 / spacing;
        scenario.stochastic().repair.kind = fault::RepairDistribution::kExponential;
        scenario.stochastic().repair.rate = 1.0 / outage;
        scenario.stochastic().auto_repair = true;
        sim.load_scenario(scenario);

        sim.run_events(warmup);
        sim::TransitionRecorder recorder(wl.qos, sim.now());
        sim.attach_recorder(&recorder);

        fault::InvariantAuditor auditor(network);
        if (audit) sim.injector().set_auditor(&auditor);

        double t = sim.now();
        for (std::size_t a = 0; a < attacks; ++a) {
          t += spacing + outage;
          sim.run_until(t);
        }

        const net::RevenueReport rev = net::assess_revenue(network, net::RevenueModel{});
        const net::NetworkStats& ns = network.stats();
        const sim::RecoveryPlaneStats& rp = sim.recovery()->stats();
        RpRow row;
        row.attacks = sim.injector().stats().burst_failures;
        row.severed = rp.severed;
        row.signals = rp.signals_sent;
        row.losses = rp.signals_lost;
        row.retries = rp.retries;
        row.fallbacks = rp.fallbacks;
        row.deadline_miss = ns.drop_causes.deadline_miss;
        row.recovered = rp.recovered;
        row.dropped = ns.drop_causes.total();
        row.victims = ns.unprotected_victims;
        const std::vector<double> ttr =
            util::percentiles(ns.recovery_times, {50.0, 95.0, 99.0});
        row.p50 = ttr[0];
        row.p95 = ttr[1];
        row.p99 = ttr[2];
        const std::vector<double> blk =
            util::percentiles(ns.blackout_times, {50.0, 95.0, 99.0});
        row.b50 = blk[0];
        row.b95 = blk[1];
        row.b99 = blk[2];
        row.revenue = rev.total;
        row.audit_checks = auditor.checks_run();
        const sim::SimulationStats& ss = sim.stats();
        row.events = ss.arrival_events + ss.termination_events +
                     ss.failure_events + ss.repair_events;
        return row;
      });

  // The grid helper only measures points/s; derive events/s from the churn
  // each cell executed so bench_compare can gate both axes.
  if (report.wall_seconds > 0.0) {
    std::size_t total_events = 0;
    for (const RpRow& r : rows) total_events += r.events;
    report.events_per_second =
        static_cast<double>(total_events) / report.wall_seconds;
  }

  util::Table table({"scheme", "signaling", "attacks", "severed", "signals",
                     "losses", "retries", "fallbk", "ddl-miss", "recovered",
                     "dropped", "ttr p50", "ttr p95", "ttr p99", "blk p50",
                     "blk p95", "revenue"});
  const auto mean = [&](std::size_t point, auto field) {
    return bench::rep_mean(rows, point, cli.reps,
                           [&](const RpRow& r) { return r.*field; });
  };
  const auto count = [&](std::size_t point, auto field) {
    return std::to_string(
        static_cast<std::size_t>(std::llround(mean(point, field))));
  };
  const auto sla_cell = [&](std::size_t point, auto field) -> std::string {
    const double v = mean(point, field);
    return std::isnan(v) ? "-" : util::Table::num(v, 2);
  };
  for (std::size_t point = 0; point < n_points; ++point) {
    table.add_row({scheme_names[point / 2], variant_names[point % 2],
                   count(point, &RpRow::attacks), count(point, &RpRow::severed),
                   count(point, &RpRow::signals), count(point, &RpRow::losses),
                   count(point, &RpRow::retries), count(point, &RpRow::fallbacks),
                   count(point, &RpRow::deadline_miss),
                   count(point, &RpRow::recovered), count(point, &RpRow::dropped),
                   sla_cell(point, &RpRow::p50), sla_cell(point, &RpRow::p95),
                   sla_cell(point, &RpRow::p99), sla_cell(point, &RpRow::b50),
                   sla_cell(point, &RpRow::b95),
                   util::Table::num(mean(point, &RpRow::revenue))});
  }
  table.print(std::cout);
  if (audit) {
    std::size_t audit_checks = 0;
    for (const RpRow& r : rows) audit_checks += r.audit_checks;
    std::cout << "# audit checks passed: " << audit_checks << "\n";
  }
  std::cout << "# expectation: lossy signaling stretches the measured TTR tail "
               "(retries under exponential backoff) and converts the slowest "
               "recoveries into deadline-miss drops; blackout percentiles "
               "include dropped victims, TTR percentiles only survivors\n";

  // One JSON entry per scheme ("bench_multifailure/rp_<scheme>"); both
  // variants' measured SLA + signaling counters ride in "extra".
  if (!cli.json.empty()) {
    for (std::size_t si = 0; si < 3; ++si) {
      core::SweepReport entry = report;
      entry.points = 2;  // ideal + lossy
      entry.extra.clear();
      for (std::size_t pi = 0; pi < 2; ++pi) {
        const std::string prefix = std::string(variant_names[pi]) + "_rp";
        const std::size_t point = si * 2 + pi;
        if (!std::isnan(mean(point, &RpRow::p50))) {
          entry.extra.emplace_back(prefix + "_ttr_p50", mean(point, &RpRow::p50));
          entry.extra.emplace_back(prefix + "_ttr_p95", mean(point, &RpRow::p95));
          entry.extra.emplace_back(prefix + "_ttr_p99", mean(point, &RpRow::p99));
        }
        if (!std::isnan(mean(point, &RpRow::b50))) {
          entry.extra.emplace_back(prefix + "_blackout_p50", mean(point, &RpRow::b50));
          entry.extra.emplace_back(prefix + "_blackout_p95", mean(point, &RpRow::b95));
          entry.extra.emplace_back(prefix + "_blackout_p99", mean(point, &RpRow::b99));
        }
        entry.extra.emplace_back(prefix + "_signals", mean(point, &RpRow::signals));
        entry.extra.emplace_back(prefix + "_losses", mean(point, &RpRow::losses));
        entry.extra.emplace_back(prefix + "_retries", mean(point, &RpRow::retries));
        entry.extra.emplace_back(prefix + "_deadline_miss",
                                 mean(point, &RpRow::deadline_miss));
        entry.extra.emplace_back(prefix + "_victims", mean(point, &RpRow::victims));
        entry.extra.emplace_back(prefix + "_dropped", mean(point, &RpRow::dropped));
        entry.extra.emplace_back(prefix + "_recovered",
                                 mean(point, &RpRow::recovered));
      }
      if (!core::write_sweep_json(cli.json,
                                  std::string("bench_multifailure/rp_") +
                                      scheme_names[si],
                                  entry))
        std::cerr << "bench_multifailure: cannot write " << cli.json << "\n";
    }
  }
  bench::BenchCli tail = cli;
  tail.json.clear();  // per-scheme entries already written above
  return bench::finish_sweep(tail, "bench_multifailure", report);
}

int run_schemes(const eqos::bench::BenchCli& cli, bool audit) {
  using namespace eqos;
  const topology::Graph& graph = bench::random_network();
  std::cout << "== Multi-failure: backup schemes under Poisson vs adversarial "
               "SRLG failures ==\n";
  bench::print_graph_header("Random (Waxman)", graph);
  bench::print_workload_header(bench::paper_experiment(2000));
  std::cout << "# SRLGs of " << kSrlgSize << " links; attack spacing 100, outage 40 "
               "(poisson: group rate 0.01, repair rate 0.025; adversary: worst "
               "2-group combination against live state); SRLG-avoiding placement\n";

  const net::BackupScheme schemes[3] = {net::BackupScheme::kSingle,
                                        net::BackupScheme::kDualDisjoint,
                                        net::BackupScheme::kSegment};
  const char* scheme_names[3] = {"single", "dual", "segment"};
  const char* process_names[2] = {"poisson", "adversary"};
  const std::size_t populate = cli.smoke ? 300 : (bench::fast_mode() ? 800 : 2000);
  const std::size_t warmup = cli.smoke ? 30 : (bench::fast_mode() ? 200 : 500);
  const std::size_t attacks = cli.smoke ? 2 : (bench::fast_mode() ? 5 : 15);
  const double spacing = 100.0;
  const double outage = 40.0;
  const std::size_t n_points = 6;  // 3 schemes x {poisson, adversary}

  core::SweepReport report;
  const auto rows = bench::run_point_grid(
      cli, "bench_multifailure_schemes", n_points, report,
      [&](std::size_t point, std::size_t rep) {
        const std::size_t si = point / 2;
        const bool adversarial = (point % 2) != 0;

        net::NetworkConfig ncfg;
        ncfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
        ncfg.backup_scheme = schemes[si];
        ncfg.srlg_policy = net::SrlgPolicy::kAvoid;
        net::Network network(graph, ncfg);

        sim::WorkloadConfig wl;
        wl.qos = bench::paper_qos();
        wl.arrival_rate = 1e-3;
        wl.termination_rate = 1e-3;
        wl.failure_rate = 0.0;  // all failures come from the scenario / adversary
        wl.seed = core::sweep_seed(bench::kWorkloadSeed, point, rep);
        sim::Simulator sim(network, wl,
                           sim::make_shard_plan(graph,
                                                static_cast<std::uint32_t>(cli.shards),
                                                ncfg,
                                                util::Rng::substream_seed(
                                                    wl.seed, 0x73686172647325ULL)));
        sim.populate(populate);

        fault::FaultScenario scenario = partition_srlgs(graph, kSrlgSize);
        if (!adversarial) {
          scenario.stochastic().group_failure_rate = 1.0 / spacing;
          scenario.stochastic().repair.kind = fault::RepairDistribution::kExponential;
          scenario.stochastic().repair.rate = 1.0 / outage;
          scenario.stochastic().auto_repair = true;
        }
        // Declares the SRLGs to admission either way (SrlgPolicy::kAvoid);
        // with zero rates the scenario injects nothing.
        sim.load_scenario(scenario);

        sim.run_events(warmup);
        sim::TransitionRecorder recorder(wl.qos, sim.now());
        sim.attach_recorder(&recorder);

        // Per-event audits for the scenario-injected (poisson) faults; the
        // adversary injects directly, so its rounds audit explicitly below.
        fault::InvariantAuditor auditor(network);
        if (audit) sim.injector().set_auditor(&auditor);

        fault::AdversaryBudget budget;
        budget.max_groups = 2;
        double t = sim.now();
        for (std::size_t a = 0; a < attacks; ++a) {
          t += spacing;
          sim.run_until(t);
          if (adversarial) {
            const fault::AttackPlan plan =
                fault::worst_case_attack(network, scenario.groups(), budget);
            std::vector<topology::LinkId> hit;
            plan.failed_links.for_each_set_bit([&](std::size_t l) {
              if (!network.link_state(l).failed())
                hit.push_back(static_cast<topology::LinkId>(l));
            });
            for (topology::LinkId l : hit) network.fail_link(l);
            if (audit) auditor.check("post-attack");
            t += outage;
            sim.run_until(t);
            for (topology::LinkId l : hit) network.repair_link(l);
            if (audit) auditor.check("post-repair");
          } else {
            t += outage;
            sim.run_until(t);
          }
        }

        const sim::ModelEstimates est = recorder.estimates(sim.now(), network);
        const net::RevenueReport rev = net::assess_revenue(network, net::RevenueModel{});
        const net::NetworkStats& ns = network.stats();
        SchemeRow row;
        row.attacks = adversarial ? attacks : sim.injector().stats().burst_failures;
        row.activated = ns.backups_activated;
        row.survived_set = ns.survived_via_backup_set;
        row.victims = ns.unprotected_victims;
        row.pair = ns.reestablished_pair;
        row.degraded = ns.reestablished_degraded;
        row.dropped = ns.drop_causes.total();
        // One sort for all three SLA percentiles; NaN when no victim ever
        // rerouted (absence of data, not instant recovery).
        const std::vector<double> ttr =
            util::percentiles(ns.recovery_times, {50.0, 95.0, 99.0});
        row.p50 = ttr[0];
        row.p95 = ttr[1];
        row.p99 = ttr[2];
        row.revenue = rev.total;
        row.sim_kbps = est.mean_bandwidth_kbps;
        row.audit_checks = auditor.checks_run();
        return row;
      });

  util::Table table({"scheme", "process", "attacks", "activated", "survived-set",
                     "victims", "pair", "degraded", "dropped", "ttr p50", "ttr p95",
                     "ttr p99", "revenue", "sim Kb/s"});
  const auto mean = [&](std::size_t point, auto field) {
    return bench::rep_mean(rows, point, cli.reps,
                           [&](const SchemeRow& r) { return r.*field; });
  };
  const auto count = [&](std::size_t point, auto field) {
    return std::to_string(
        static_cast<std::size_t>(std::llround(mean(point, field))));
  };
  // A scheme/process cell with no rerouted victims has no recovery SLA to
  // report: print "-" rather than a number that reads as instant recovery.
  const auto ttr_cell = [&](std::size_t point, auto field) -> std::string {
    const double v = mean(point, field);
    return std::isnan(v) ? "-" : util::Table::num(v, 2);
  };
  for (std::size_t point = 0; point < n_points; ++point) {
    table.add_row({scheme_names[point / 2], process_names[point % 2],
                   count(point, &SchemeRow::attacks), count(point, &SchemeRow::activated),
                   count(point, &SchemeRow::survived_set), count(point, &SchemeRow::victims),
                   count(point, &SchemeRow::pair), count(point, &SchemeRow::degraded),
                   count(point, &SchemeRow::dropped),
                   ttr_cell(point, &SchemeRow::p50),
                   ttr_cell(point, &SchemeRow::p95),
                   ttr_cell(point, &SchemeRow::p99),
                   util::Table::num(mean(point, &SchemeRow::revenue)),
                   util::Table::num(mean(point, &SchemeRow::sim_kbps))});
  }
  table.print(std::cout);
  if (audit) {
    std::size_t audit_checks = 0;
    for (const SchemeRow& r : rows) audit_checks += r.audit_checks;
    std::cout << "# audit checks passed: " << audit_checks << "\n";
  }
  std::cout << "# expectation: dual and segment sets convert adversarial double-hits "
               "into survived-via-backup-set; dual pays constant cross-connect "
               "activation, segment pays per-patch-hop splice time\n";

  // One JSON entry per scheme so bench_compare can track each variant's
  // trajectory; the recovery percentiles ride in the "extra" section.
  if (!cli.json.empty()) {
    for (std::size_t si = 0; si < 3; ++si) {
      core::SweepReport entry = report;
      entry.points = 2;  // poisson + adversary
      entry.extra.clear();
      for (std::size_t pi = 0; pi < 2; ++pi) {
        const std::string prefix = process_names[pi];
        const std::size_t point = si * 2 + pi;
        // Omit the SLA keys entirely when no victim rerouted: downstream
        // consumers (validate_obs.py) treat absence as "no data" and a
        // literal 0.0 as a reporting bug.
        if (!std::isnan(mean(point, &SchemeRow::p50))) {
          entry.extra.emplace_back(prefix + "_ttr_p50", mean(point, &SchemeRow::p50));
          entry.extra.emplace_back(prefix + "_ttr_p95", mean(point, &SchemeRow::p95));
          entry.extra.emplace_back(prefix + "_ttr_p99", mean(point, &SchemeRow::p99));
        }
        entry.extra.emplace_back(prefix + "_survived_backup_set",
                                 mean(point, &SchemeRow::survived_set));
        entry.extra.emplace_back(prefix + "_dropped", mean(point, &SchemeRow::dropped));
        entry.extra.emplace_back(prefix + "_revenue", mean(point, &SchemeRow::revenue));
      }
      if (!core::write_sweep_json(cli.json,
                                  std::string("bench_multifailure/") + scheme_names[si],
                                  entry))
        std::cerr << "bench_multifailure: cannot write " << cli.json << "\n";
    }
  }
  bench::BenchCli tail = cli;
  tail.json.clear();  // per-scheme entries already written above
  return bench::finish_sweep(tail, "bench_multifailure", report);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eqos;
  // Strip the bench-local --audit / --schemes flags before the shared CLI
  // parse.
  bool audit = false;
  bool schemes = false;
  bool recovery_protocol = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (i > 0 && std::strcmp(argv[i], "--audit") == 0)
      audit = true;
    else if (i > 0 && std::strcmp(argv[i], "--schemes") == 0)
      schemes = true;
    else if (i > 0 && std::strcmp(argv[i], "--recovery-protocol") == 0)
      recovery_protocol = true;
    else
      args.push_back(argv[i]);
  }
  const bench::BenchCli cli =
      bench::parse_cli(static_cast<int>(args.size()), args.data());
  if (recovery_protocol) return run_recovery_protocol(cli, audit);
  if (schemes) return run_schemes(cli, audit);

  std::cout << "== Multi-failure: SRLG burst size vs dependability ==\n";
  const topology::Graph& graph = bench::random_network();
  bench::print_graph_header("Random (Waxman)", graph);
  bench::print_workload_header(bench::paper_experiment(2000));
  std::cout << "# link-failure intensity 1e-4 links/time (burst rate = intensity/k), "
               "exponential repair 1e-2"
            << (audit ? "; auditing every fault event" : "") << "\n";

  std::vector<std::size_t> sizes{1, 2, 3, 4, 6, 8};
  if (bench::fast_mode()) sizes = {1, 3, 6};
  if (cli.smoke) sizes = {2};
  const std::size_t populate = cli.smoke ? 300 : 2000;
  const std::size_t warmup = cli.smoke ? 30 : (bench::fast_mode() ? 200 : 500);
  const std::size_t measure = cli.smoke ? 100 : (bench::fast_mode() ? 1000 : 6000);
  const double intensity = 1e-4;

  core::SweepReport report;
  const auto rows = bench::run_point_grid(
      cli, "bench_multifailure", sizes.size(), report, [&](std::size_t point, std::size_t rep) {
        const std::size_t k = sizes[point];
        net::NetworkConfig ncfg;
        ncfg.second_failure_policy = net::SecondFailurePolicy::kReestablish;
        net::Network network(graph, ncfg);

        sim::WorkloadConfig wl;
        wl.qos = bench::paper_qos();
        wl.arrival_rate = 1e-3;
        wl.termination_rate = 1e-3;
        wl.failure_rate = 0.0;  // all failures come from the scenario
        wl.seed = core::sweep_seed(bench::kWorkloadSeed, point, rep);
        sim::Simulator sim(network, wl,
                           sim::make_shard_plan(graph,
                                                static_cast<std::uint32_t>(cli.shards),
                                                ncfg,
                                                util::Rng::substream_seed(
                                                    wl.seed, 0x73686172647325ULL)));
        sim.populate(populate);

        // Partition a shuffled link list into SRLGs of size k.
        std::vector<topology::LinkId> links(graph.num_links());
        std::iota(links.begin(), links.end(), topology::LinkId{0});
        util::Rng shuffle_rng(bench::kTopologySeed ^ k);
        shuffle_rng.shuffle(links);
        fault::FaultScenario scenario;
        for (std::size_t i = 0; i < links.size(); i += k) {
          const std::size_t end = std::min(i + k, links.size());
          scenario.define_group("srlg" + std::to_string(i / k),
                                {links.begin() + static_cast<std::ptrdiff_t>(i),
                                 links.begin() + static_cast<std::ptrdiff_t>(end)});
        }
        scenario.stochastic().group_failure_rate =
            intensity / static_cast<double>(k);
        scenario.stochastic().repair.kind = fault::RepairDistribution::kExponential;
        scenario.stochastic().repair.rate = 1e-2;
        scenario.stochastic().auto_repair = true;
        sim.load_scenario(scenario);

        fault::InvariantAuditor auditor(network);
        if (audit) sim.injector().set_auditor(&auditor);

        sim.run_events(warmup);
        sim::TransitionRecorder recorder(wl.qos, sim.now());
        sim.attach_recorder(&recorder);
        sim.run_events(measure);
        const sim::ModelEstimates est = recorder.estimates(sim.now(), network);
        const net::NetworkStats& ns = network.stats();

        Row row;
        row.bursts = sim.injector().stats().burst_failures;
        row.activated = ns.backups_activated;
        row.victims = ns.unprotected_victims;
        row.pair = ns.reestablished_pair;
        row.degraded = ns.reestablished_degraded;
        row.dropped = ns.drop_causes.total();
        row.p_hit = ns.drop_causes.primary_hit;
        row.b_hit = ns.drop_causes.backup_hit_while_active;
        row.dbl_hit = ns.drop_causes.double_hit;
        row.unprotected_pct = 100.0 * est.unprotected_fraction;
        row.sim_kbps = est.mean_bandwidth_kbps;
        row.audit_checks = auditor.checks_run();
        return row;
      });

  util::Table table({"srlg k", "bursts", "activated", "victims", "pair", "degraded",
                     "dropped", "p-hit", "b-hit", "dbl-hit", "unprot %", "sim Kb/s"});
  const auto mean = [&](std::size_t point, auto field) {
    return bench::rep_mean(rows, point, cli.reps,
                           [&](const Row& r) { return r.*field; });
  };
  const auto count = [&](std::size_t point, auto field) {
    return std::to_string(
        static_cast<std::size_t>(std::llround(mean(point, field))));
  };
  std::size_t audit_checks = 0;
  for (const Row& r : rows) audit_checks += r.audit_checks;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    table.add_row({std::to_string(sizes[i]), count(i, &Row::bursts),
                   count(i, &Row::activated), count(i, &Row::victims),
                   count(i, &Row::pair), count(i, &Row::degraded),
                   count(i, &Row::dropped), count(i, &Row::p_hit),
                   count(i, &Row::b_hit), count(i, &Row::dbl_hit),
                   util::Table::num(mean(i, &Row::unprotected_pct), 3),
                   util::Table::num(mean(i, &Row::sim_kbps))});
  }
  table.print(std::cout);
  if (audit) std::cout << "# audit checks passed: " << audit_checks << "\n";
  std::cout << "# expectation: victims / degraded / drops grow with k at constant "
               "link-failure intensity; kReestablish converts most strandings into "
               "pair or degraded re-establishments\n";
  return bench::finish_sweep(cli, "bench_multifailure", report);
}
