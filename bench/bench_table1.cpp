// Table 1: average bandwidth for different bandwidth-increment sizes
// (5-state chain, increment 100 Kb/s vs 9-state chain, increment 50 Kb/s)
// on the Random and Tier networks.
//
// Expected findings (paper): the two increment sizes give essentially the
// same average bandwidth on both topologies; on the Tier network most of
// the offered connections are rejected (the left column counts connections
// *tried*), so its averages stay high while its accepted count is small.
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Table 1: average bandwidth vs increment size "
               "(5-state = 100 Kb/s, 9-state = 50 Kb/s) ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());
  bench::print_graph_header("Tier (transit-stub)", bench::tier_network());
  bench::print_workload_header(bench::paper_experiment(1000));
  std::cout << "# left column counts connections tried (paper's convention); "
               "Tier establishes far fewer\n";

  std::vector<std::size_t> loads{1000, 2000, 3000, 4000, 5000};
  if (bench::fast_mode()) loads = {1000, 3000, 5000};
  if (cli.smoke) loads = {1000};

  // Four cells per row: (Random, Tier) x (100 Kb/s, 50 Kb/s increment).
  std::vector<core::SweepPoint> points;
  for (const std::size_t n : loads) {
    for (const auto* g : {&bench::random_network(), &bench::tier_network()}) {
      for (const double increment : {100.0, 50.0}) {
        auto cfg = bench::paper_experiment(n, increment);
        if (cli.smoke) cfg = bench::smoke_config(cfg);
        points.push_back({g, cfg, std::to_string(n)});
      }
    }
  }
  const auto sweep = core::run_sweep(points, cli.sweep_options());

  util::Table table({"tried", "Random-5st", "Random-9st", "Tier-5st", "Tier-9st",
                     "Random est.", "Tier est."});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto r5 = sweep.point_mean(i * 4 + 0);
    const auto r9 = sweep.point_mean(i * 4 + 1);
    const auto t5 = sweep.point_mean(i * 4 + 2);
    const auto t9 = sweep.point_mean(i * 4 + 3);
    table.add_row({std::to_string(loads[i]), util::Table::num(r5.analytic_paper_kbps),
                   util::Table::num(r9.analytic_paper_kbps),
                   util::Table::num(t5.analytic_paper_kbps),
                   util::Table::num(t9.analytic_paper_kbps),
                   std::to_string(r9.established), std::to_string(t9.established)});
  }
  table.print(std::cout);
  std::cout << "# expectation: 5-state ~ 9-state in every row; Tier est. << "
               "Random est.\n";
  return bench::finish_sweep(cli, "bench_table1", sweep.report);
}
