// Table 1: average bandwidth for different bandwidth-increment sizes
// (5-state chain, increment 100 Kb/s vs 9-state chain, increment 50 Kb/s)
// on the Random and Tier networks.
//
// Expected findings (paper): the two increment sizes give essentially the
// same average bandwidth on both topologies; on the Tier network most of
// the offered connections are rejected (the left column counts connections
// *tried*), so its averages stay high while its accepted count is small.
#include <iostream>
#include <vector>

#include "common.hpp"

namespace {

struct Cell {
  double markov_kbps = 0.0;
  double sim_kbps = 0.0;
  std::size_t established = 0;
};

Cell run_cell(const eqos::topology::Graph& g, std::size_t tried, double increment) {
  const auto r =
      eqos::core::run_experiment(g, eqos::bench::paper_experiment(tried, increment));
  return Cell{r.analytic_paper_kbps, r.sim_mean_bandwidth_kbps, r.established};
}

}  // namespace

int main() {
  using namespace eqos;
  std::cout << "== Table 1: average bandwidth vs increment size "
               "(5-state = 100 Kb/s, 9-state = 50 Kb/s) ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());
  bench::print_graph_header("Tier (transit-stub)", bench::tier_network());
  bench::print_workload_header(bench::paper_experiment(1000));
  std::cout << "# left column counts connections tried (paper's convention); "
               "Tier establishes far fewer\n";

  std::vector<std::size_t> loads{1000, 2000, 3000, 4000, 5000};
  if (bench::fast_mode()) loads = {1000, 3000, 5000};

  util::Table table({"tried", "Random-5st", "Random-9st", "Tier-5st", "Tier-9st",
                     "Random est.", "Tier est."});
  for (const std::size_t n : loads) {
    const Cell r5 = run_cell(bench::random_network(), n, 100.0);
    const Cell r9 = run_cell(bench::random_network(), n, 50.0);
    const Cell t5 = run_cell(bench::tier_network(), n, 100.0);
    const Cell t9 = run_cell(bench::tier_network(), n, 50.0);
    table.add_row({std::to_string(n), util::Table::num(r5.markov_kbps),
                   util::Table::num(r9.markov_kbps), util::Table::num(t5.markov_kbps),
                   util::Table::num(t9.markov_kbps), std::to_string(r9.established),
                   std::to_string(t9.established)});
  }
  table.print(std::cout);
  std::cout << "# expectation: 5-state ~ 9-state in every row; Tier est. << "
               "Random est.\n";
  return 0;
}
