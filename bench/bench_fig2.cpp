// Figure 2: average bandwidth of a DR-connection as the number of
// DR-connections grows (Random network, 9-state chain, gamma = 0).
//
// The paper's series: simulation (solid), 9-state Markov analysis (dashed),
// and the ideal bound BW*Edges/(NChan*avghop) (dotted).  Expected shape:
// both sim and analysis start at Bmax, decline monotonically toward Bmin as
// load grows, track each other closely, and stay below the ideal bound.
#include <iostream>
#include <vector>

#include "common.hpp"

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Figure 2: average bandwidth vs number of DR-connections ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());
  bench::print_workload_header(bench::paper_experiment(1000));

  std::vector<std::size_t> loads{250, 500, 1000, 1500, 2000, 2500, 3000,
                                 3500, 4000, 4500, 5000, 6000, 7000, 8000};
  if (bench::fast_mode()) loads = {500, 2000, 4000, 6000};
  if (cli.smoke) loads = {500};

  std::vector<core::SweepPoint> points;
  for (const std::size_t n : loads) {
    auto cfg = bench::paper_experiment(n);
    if (cli.smoke) cfg = bench::smoke_config(cfg);
    cfg.shards = cli.shards;
    points.push_back({&bench::random_network(), cfg, std::to_string(n)});
  }
  const auto sweep = core::run_sweep(points, cli.sweep_options());

  util::Table table({"connections", "established", "sim Kb/s", "markov Kb/s",
                     "refined Kb/s", "ideal Kb/s", "ideal(clamped)", "avg hops",
                     "Pf", "Ps"});
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const auto r = sweep.point_mean(i);
    table.add_row({std::to_string(loads[i]), std::to_string(r.established),
                   util::Table::num(r.sim_mean_bandwidth_kbps),
                   util::Table::num(r.analytic_paper_kbps),
                   util::Table::num(r.analytic_refined_kbps),
                   util::Table::num(r.ideal_kbps),
                   util::Table::num(r.ideal_clamped_kbps),
                   util::Table::num(r.mean_hops, 2),
                   util::Table::num(r.estimates.pf, 4),
                   util::Table::num(r.estimates.ps, 4)});
  }
  table.print(std::cout);
  std::cout << "# expectation: sim ~ markov, monotone decline Bmax -> Bmin, "
               "ideal is an upper bound\n";
  return bench::finish_sweep(cli, "bench_fig2", sweep.report);
}
