// Ablation A4: route selection policy.
//
// The paper's flooding establishment implicitly load-balances: among
// fewest-hop routes the destination confirms the one with the "better
// bandwidth allowance".  This ablation compares that widest-shortest rule
// against plain fewest-hop routing at increasing load: acceptance, average
// bandwidth, and how evenly the committed load spreads over links (the
// coefficient of variation of per-link committed bandwidth).
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

struct Row {
  std::size_t established = 0;
  double mean_kbps = 0.0;
  double load_cv = 0.0;  // stddev/mean of committed bandwidth across links
};

Row run(const eqos::topology::Graph& g, std::size_t tried,
        eqos::net::RoutePolicy policy) {
  using namespace eqos;
  net::NetworkConfig cfg;
  cfg.route_policy = policy;
  net::Network net(g, cfg);
  sim::WorkloadConfig w;
  w.qos = bench::paper_qos();
  w.seed = bench::kWorkloadSeed;
  sim::Simulator sim(net, w);
  Row row;
  row.established = sim.populate(tried);
  row.mean_kbps = net.mean_reserved_kbps();
  double sum = 0.0;
  double sum2 = 0.0;
  const double m = static_cast<double>(g.num_links());
  for (topology::LinkId l = 0; l < g.num_links(); ++l) {
    const double x = net.link_state(l).committed_min();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / m;
  const double var = sum2 / m - mean * mean;
  row.load_cv = mean > 0.0 ? std::sqrt(std::max(var, 0.0)) / mean : 0.0;
  return row;
}

}  // namespace

int main() {
  using namespace eqos;
  std::cout << "== Ablation A4: widest-shortest vs plain shortest routing ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());

  std::vector<std::size_t> loads{1000, 3000, 5000, 7000};
  if (bench::fast_mode()) loads = {2000, 5000};

  util::Table table({"tried", "policy", "established", "mean Kb/s", "load CV"});
  for (const std::size_t n : loads) {
    const Row widest = run(bench::random_network(), n, net::RoutePolicy::kWidestShortest);
    const Row shortest = run(bench::random_network(), n, net::RoutePolicy::kShortest);
    table.add_row({std::to_string(n), "widest-shortest",
                   std::to_string(widest.established), util::Table::num(widest.mean_kbps),
                   util::Table::num(widest.load_cv, 3)});
    table.add_row({"", "shortest", std::to_string(shortest.established),
                   util::Table::num(shortest.mean_kbps),
                   util::Table::num(shortest.load_cv, 3)});
  }
  table.print(std::cout);
  std::cout << "# expectation: widest-shortest spreads committed load more "
               "evenly (lower CV) and sustains acceptance deeper into "
               "saturation\n";
  return 0;
}
