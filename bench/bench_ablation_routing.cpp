// Ablation A4: route selection policy.
//
// The paper's flooding establishment implicitly load-balances: among
// fewest-hop routes the destination confirms the one with the "better
// bandwidth allowance".  This ablation compares that widest-shortest rule
// against plain fewest-hop routing at increasing load: acceptance, average
// bandwidth, and how evenly the committed load spreads over links (the
// coefficient of variation of per-link committed bandwidth).
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

struct Row {
  std::size_t established = 0;
  double mean_kbps = 0.0;
  double load_cv = 0.0;  // stddev/mean of committed bandwidth across links
};

Row run(const eqos::topology::Graph& g, std::size_t tried,
        eqos::net::RoutePolicy policy, std::uint64_t seed) {
  using namespace eqos;
  net::NetworkConfig cfg;
  cfg.route_policy = policy;
  net::Network net(g, cfg);
  sim::WorkloadConfig w;
  w.qos = bench::paper_qos();
  w.seed = seed;
  sim::Simulator sim(net, w);
  Row row;
  row.established = sim.populate(tried);
  row.mean_kbps = net.mean_reserved_kbps();
  double sum = 0.0;
  double sum2 = 0.0;
  const double m = static_cast<double>(g.num_links());
  for (topology::LinkId l = 0; l < g.num_links(); ++l) {
    const double x = net.link_state(l).committed_min();
    sum += x;
    sum2 += x * x;
  }
  const double mean = sum / m;
  const double var = sum2 / m - mean * mean;
  row.load_cv = mean > 0.0 ? std::sqrt(std::max(var, 0.0)) / mean : 0.0;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Ablation A4: widest-shortest vs plain shortest routing ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());

  std::vector<std::size_t> loads{1000, 3000, 5000, 7000};
  if (bench::fast_mode()) loads = {2000, 5000};
  if (cli.smoke) loads = {500};

  // Grid: point = (load, policy), run across the CLI's workers.
  core::SweepReport report;
  const auto rows = bench::run_point_grid(
      cli, "bench_ablation_routing", loads.size() * 2, report, [&](std::size_t point, std::size_t rep) {
        const std::size_t n = loads[point / 2];
        const auto policy = point % 2 == 0 ? net::RoutePolicy::kWidestShortest
                                           : net::RoutePolicy::kShortest;
        return run(bench::random_network(), n, policy,
                   core::sweep_seed(bench::kWorkloadSeed, point, rep));
      });

  util::Table table({"tried", "policy", "established", "mean Kb/s", "load CV"});
  const auto mean = [&](std::size_t point, auto field) {
    return bench::rep_mean(rows, point, cli.reps,
                           [&](const Row& r) { return r.*field; });
  };
  for (std::size_t i = 0; i < loads.size(); ++i) {
    const std::size_t pw = i * 2, ps = i * 2 + 1;
    table.add_row({std::to_string(loads[i]), "widest-shortest",
                   std::to_string(static_cast<std::size_t>(
                       std::llround(mean(pw, &Row::established)))),
                   util::Table::num(mean(pw, &Row::mean_kbps)),
                   util::Table::num(mean(pw, &Row::load_cv), 3)});
    table.add_row({"", "shortest",
                   std::to_string(static_cast<std::size_t>(
                       std::llround(mean(ps, &Row::established)))),
                   util::Table::num(mean(ps, &Row::mean_kbps)),
                   util::Table::num(mean(ps, &Row::load_cv), 3)});
  }
  table.print(std::cout);
  std::cout << "# expectation: widest-shortest spreads committed load more "
               "evenly (lower CV) and sustains acceptance deeper into "
               "saturation\n";
  return bench::finish_sweep(cli, "bench_ablation_routing", report);
}
