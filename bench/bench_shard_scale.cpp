// Sharded-simulation scaling: one run holding a 10^5-node topology.
//
// Two phases, one JSON entry (`bench_shard_scale`):
//
//  1. Network churn at scale: a 250x400 torus (100,000 nodes, 200,000
//     links) partitioned into --shards groups, driven by the full workload
//     (arrivals, terminations, a sampled set of per-link failure processes
//     with auto-repair).  Exercises the sharded engine end-to-end: link
//     events land on their owning shard, cross-shard schedules go through
//     the mailboxes, and the network counts primary routes handed off
//     between shard ledgers.
//
//  2. Engine hold-model throughput: the headline events/sec the perf gate
//     tracks.  A ShardedEngine holds a large steady-state population of
//     POD events whose loci rotate across shards (per-shard offset tables
//     from Rng::substream_seed), so every dispatch exercises the K-way
//     merge and most replacements cross a shard boundary.  Per-shard event
//     throughput is reported with p50/p95/p99 over the shard set.
//
// Results of phase 1 are bit-identical at every --shards value (same
// discipline as the macro benches); phase 2's *throughput* naturally
// depends on the shard count — that is the number being measured.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "fault/scenario.hpp"
#include "sim/shard.hpp"
#include "sim/simulator.hpp"
#include "topology/partition.hpp"
#include "topology/regular.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  const auto shards = static_cast<std::uint32_t>(cli.shards);
  const bool fixed = core::fixed_timing();

  // Smoke keeps the protocol but shrinks the torus; the measured run holds
  // the full 10^5 nodes in one simulation.
  const std::size_t rows = cli.smoke ? 40 : 250;
  const std::size_t cols = cli.smoke ? 50 : 400;
  const std::size_t populate = cli.smoke ? 50 : 200;
  const std::size_t churn_events = cli.smoke ? 100 : 1000;
  const std::size_t fault_links = cli.smoke ? 128 : 1024;
  const std::size_t hold_pending = cli.smoke ? 20'000 : 200'000;
  const std::size_t hold_steps = cli.smoke ? 100'000 : 2'000'000;

  std::cout << "== Shard scaling: " << rows * cols << "-node torus on " << shards
            << " shard(s) ==\n";
  // print_graph_header's all-pairs BFS is O(N*E) — minutes at 10^5 nodes —
  // so print the analytic torus stats instead.
  const topology::Graph graph = topology::generate_torus(rows, cols);
  std::cout << "# Torus: " << graph.num_nodes() << " nodes, " << graph.num_links()
            << " links, avg degree 4.00, diameter " << (rows / 2 + cols / 2)
            << "\n";

  const std::uint64_t part_seed =
      util::Rng::substream_seed(bench::kWorkloadSeed, 0x73686172647325ULL);
  const topology::Partition partition =
      topology::partition_graph(graph, shards, part_seed);
  const std::size_t cut = topology::count_cut_links(graph, partition);
  std::cout << "# partition: " << partition.shards << " shards, " << cut
            << " cut links (" << util::Table::num(
                   100.0 * static_cast<double>(cut) /
                       static_cast<double>(graph.num_links()), 2)
            << "% of links)\n";

  const auto clock_now = [] { return std::chrono::steady_clock::now(); };
  const auto seconds = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };

  // ---- Phase 1: full-workload churn at scale ------------------------------
  net::NetworkConfig ncfg;
  net::Network network(graph, ncfg);
  sim::WorkloadConfig wl;
  wl.qos = bench::paper_qos();
  wl.arrival_rate = 1e-3;
  wl.termination_rate = 1e-3;
  wl.seed = bench::kWorkloadSeed;
  sim::ShardPlan plan;
  plan.partition = partition;
  plan.lookahead = ncfg.recovery_detect_time;
  sim::Simulator sim(network, wl, plan);

  const auto t0 = clock_now();
  sim.populate(populate);

  // A sampled set of per-link Poisson failure processes, strided across the
  // link list so every shard owns some: these are the link-scoped events the
  // locus routes off shard 0.
  fault::FaultScenario scenario;
  const std::size_t stride = std::max<std::size_t>(graph.num_links() / fault_links, 1);
  for (std::size_t l = 0; l < graph.num_links(); l += stride)
    scenario.stochastic().per_link_rates.emplace_back(
        static_cast<topology::LinkId>(l), 2e-6);
  scenario.stochastic().repair.kind = fault::RepairDistribution::kExponential;
  scenario.stochastic().repair.rate = 1e-2;
  scenario.stochastic().auto_repair = true;
  sim.load_scenario(scenario);

  sim.run_events(churn_events);
  const double churn_wall = seconds(t0, clock_now());
  const std::size_t churn_total = sim.stats().arrival_events +
                                  sim.stats().termination_events +
                                  sim.stats().failure_events +
                                  sim.stats().repair_events;
  const double churn_eps =
      churn_wall > 0.0 ? static_cast<double>(churn_total) / churn_wall : 0.0;

  std::cout << "# churn: " << churn_total << " events ("
            << sim.stats().failure_events << " failures, "
            << sim.stats().repair_events << " repairs), "
            << sim.engine().cross_shard_events() << " cross-shard, "
            << sim.engine().barrier_rounds() << " barrier rounds, "
            << network.cross_shard_handoffs() << " route handoffs, "
            << util::Table::num(fixed ? 0.0 : churn_eps, 0) << " events/s\n";

  // ---- Phase 2: engine hold-model throughput ------------------------------
  sim::ShardedEngine engine;
  constexpr std::uint32_t kKind = 1;
  const std::uint32_t k = std::max<std::uint32_t>(shards, 1);
  engine.configure(k, 25.0,
                   [k](const sim::EventTag& t) {
                     return static_cast<std::uint32_t>(t.a % k);
                   });
  // Per-shard offset tables from the canonical substream derivation: shard
  // s draws its hold offsets from substream_seed(seed, s).
  std::vector<std::vector<double>> offsets(k);
  for (std::uint32_t s = 0; s < k; ++s) {
    util::Rng rng(util::Rng::substream_seed(bench::kWorkloadSeed, s));
    offsets[s].resize(512);
    for (double& d : offsets[s]) d = rng.uniform(0.0, 100.0);
  }

  std::uint64_t sink = 0;
  std::uint64_t tick = 0;
  std::vector<std::uint64_t> shard_events(k, 0);
  const auto schedule_one = [&](double t) {
    const std::uint64_t locus = tick % k;
    engine.schedule(t + offsets[locus][tick % offsets[locus].size()],
                    sim::EventTag{kKind, locus, tick});
    ++tick;
  };
  // Replacements are scheduled from inside the handler, so nearly every one
  // targets a different shard than the dispatching one and takes the
  // cross-shard mailbox detour — the worst-case commit path.
  engine.set_handler(kKind, [&](const sim::EventTag& t) {
    sink += t.b;
    ++shard_events[t.a % k];
    schedule_one(engine.now());
  });
  for (std::size_t i = 0; i < hold_pending; ++i) schedule_one(0.0);

  const auto t1 = clock_now();
  for (std::size_t i = 0; i < hold_steps; ++i) engine.step();
  const double hold_wall = seconds(t1, clock_now());
  const double hold_eps =
      hold_wall > 0.0 ? static_cast<double>(hold_steps) / hold_wall : 0.0;
  if (sink == 0) std::cerr << "bench_shard_scale: empty sink\n";

  // Per-shard throughput spread (second consumer of util::percentiles).
  std::vector<double> shard_tput(k, 0.0);
  for (std::uint32_t s = 0; s < k; ++s)
    shard_tput[s] = hold_wall > 0.0
                        ? static_cast<double>(shard_events[s]) / hold_wall
                        : 0.0;
  const std::vector<double> tput_pct =
      util::percentiles(shard_tput, {50.0, 95.0, 99.0});

  util::Table table({"shard", "nodes", "links", "events", "events/s"});
  std::vector<std::size_t> shard_nodes(k, 0);
  std::vector<std::size_t> shard_links(k, 0);
  for (topology::NodeId n = 0; n < graph.num_nodes(); ++n)
    ++shard_nodes[partition.shard_of[n]];
  for (const topology::Link& l : graph.links())
    if (partition.shard_of[l.a] == partition.shard_of[l.b])
      ++shard_links[partition.shard_of[l.a]];
  for (std::uint32_t s = 0; s < k; ++s)
    table.add_row({std::to_string(s), std::to_string(shard_nodes[s]),
                   std::to_string(shard_links[s]), std::to_string(shard_events[s]),
                   util::Table::num(fixed ? 0.0 : shard_tput[s], 0)});
  table.print(std::cout);
  std::cout << "# hold model: " << hold_steps << " events over " << k
            << " shard(s), " << engine.cross_shard_events() << " cross-shard, "
            << engine.barrier_rounds() << " barrier rounds, "
            << util::Table::num(fixed ? 0.0 : hold_eps, 0) << " events/s aggregate\n";
  std::cout << "# expectation: near-uniform per-shard event counts; cut links "
               "stay a thin frontier of the torus\n";

  core::SweepReport report;
  report.points = 1;
  report.reps = 1;
  report.threads = k;
  report.wall_seconds = churn_wall + hold_wall;
  report.points_per_second =
      report.wall_seconds > 0.0 ? 1.0 / report.wall_seconds : 0.0;
  report.events_per_second = hold_eps;
  report.extra.emplace_back("nodes", static_cast<double>(graph.num_nodes()));
  report.extra.emplace_back("links", static_cast<double>(graph.num_links()));
  report.extra.emplace_back("shards", static_cast<double>(k));
  report.extra.emplace_back("cut_links", static_cast<double>(cut));
  report.extra.emplace_back("churn_events_per_second", churn_eps);
  report.extra.emplace_back("cross_shard_events",
                            static_cast<double>(engine.cross_shard_events()));
  report.extra.emplace_back("barrier_rounds",
                            static_cast<double>(engine.barrier_rounds()));
  report.extra.emplace_back("route_handoffs",
                            static_cast<double>(network.cross_shard_handoffs()));
  report.extra.emplace_back("shard_tput_p50", tput_pct[0]);
  report.extra.emplace_back("shard_tput_p95", tput_pct[1]);
  report.extra.emplace_back("shard_tput_p99", tput_pct[2]);
  return bench::finish_sweep(cli, "bench_shard_scale", report);
}
