// Extension experiment: transient recovery from a global elastic preemption.
//
// The paper solves its chain for the steady state only, noting the model
// "can be expanded to include other issues".  This bench exercises one such
// expansion — transient analysis.  First, a curious null result: a burst of
// simultaneous link failures produces *no* lasting dip, because the
// retreat-and-redistribute of Section 3.1 restores every survivor's fair
// share within the event itself.  A state that genuinely persists between
// events is a control-plane reset (`Network::preempt_all_elastic`): every
// channel is pushed to its minimum and regains bandwidth only when later
// arrivals, terminations, or indirect events touch its links — exactly the
// chain's upward dynamics.  The chain, started from S_0, predicts that
// recovery by uniformization; the simulation samples the truth.
#include <algorithm>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "markov/bandwidth_chain.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Extension: transient recovery from a global elastic "
               "preemption (3000 DR-connections) ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());
  // One sequential trajectory: there is nothing to fan out, so the shared
  // --threads/--reps flags are accepted but have no effect here.
  if (cli.threads != 1 || cli.reps != 1)
    std::cout << "# single sequential trajectory; --threads/--reps ignored\n";

  auto cfg = bench::paper_experiment(3000);
  if (cli.smoke) cfg = bench::smoke_config(cfg);
  net::Network network(bench::random_network(), cfg.network);
  sim::Simulator sim(network, cfg.workload);
  sim.populate(cfg.target_connections);
  sim.run_events(cfg.warmup_events);

  // Measure the chain on the healthy, mixed network.
  sim::TransitionRecorder recorder(cfg.workload.qos, sim.now());
  sim.attach_recorder(&recorder);
  sim.run_events(cfg.measure_events);
  sim.attach_recorder(nullptr);
  const auto estimates = recorder.estimates(sim.now(), network);
  const auto analysis = core::analyze(estimates, cfg.workload);
  const markov::BandwidthChain chain(analysis.parameters);

  // Null result first: a 3-link failure burst is absorbed within the event.
  std::vector<topology::LinkId> by_load(network.graph().num_links());
  for (topology::LinkId l = 0; l < by_load.size(); ++l) by_load[l] = l;
  std::sort(by_load.begin(), by_load.end(),
            [&](topology::LinkId a, topology::LinkId b) {
              return network.link_state(a).committed_min() >
                     network.link_state(b).committed_min();
            });
  const double before_burst = network.mean_reserved_kbps();
  for (int k = 0; k < 3; ++k) network.fail_link(by_load[static_cast<std::size_t>(k)]);
  std::cout << "# failure burst: mean " << util::Table::num(before_burst) << " -> "
            << util::Table::num(network.mean_reserved_kbps())
            << " Kb/s immediately after (retreat-and-redistribute absorbs it; "
               "no transient to watch)\n";
  for (int k = 0; k < 3; ++k) network.repair_link(by_load[static_cast<std::size_t>(k)]);

  // The real transient: global preemption, then recovery through churn.
  const std::size_t preempted = network.preempt_all_elastic();
  std::cout << "# preempted elastic grants of " << preempted << " / "
            << network.num_active() << " channels; recovery driven by churn\n";

  const std::size_t n = cfg.workload.qos.num_states();
  matrix::Vector pi0(n, 0.0);
  pi0[0] = 1.0;  // everyone at the minimum

  const double t0 = sim.now();
  util::Table table({"t (x1000)", "sim Kb/s", "chain Kb/s"});
  table.add_row({"0.0", util::Table::num(network.mean_reserved_kbps()),
                 util::Table::num(chain.mean_bandwidth_at(pi0, 0.0))});
  std::vector<double> horizons{2000.0,  5000.0,   10000.0,  20000.0,
                               40000.0, 80000.0, 160000.0, 320000.0};
  if (cli.smoke) horizons = {2000.0, 10000.0};
  for (const double h : horizons) {
    sim.run_until(t0 + h);
    table.add_row({util::Table::num(h / 1000.0, 0),
                   util::Table::num(network.mean_reserved_kbps()),
                   util::Table::num(chain.mean_bandwidth_at(pi0, h))});
  }
  table.print(std::cout);
  std::cout
      << "# finding: both series climb from Bmin toward the steady state ("
      << util::Table::num(analysis.average_bandwidth_kbps)
      << " Kb/s analytic), but the simulation recovers much faster.  The\n"
         "# chain's conditional matrices are measured *at steady state*, where "
         "a touched channel gains one or two increments; far from\n"
         "# equilibrium a single water-fill jumps a preempted channel most of "
         "the way to its fair share.  Steady-state-parameterized chains\n"
         "# (the paper's device) get the fixed point right but are only a "
         "lower bound on recovery speed -- a concrete limit of the model\n"
         "# that the expansion to transients exposes.\n";
  return 0;
}
