// Extension experiment: heterogeneous QoS classes.
//
// The paper evaluates one traffic class; its conclusion anticipates
// expansion "to include other issues".  Here video ([100, 500] Kb/s) and
// audio ([64, 192] Kb/s) connections share the Random network 50/50, and a
// per-class recorder feeds a per-class Markov chain.  The chains use the
// *total* arrival/termination rates (a tagged channel retreats for any
// newcomer, whatever that newcomer asked for) but class-specific state
// spaces and matrices.
#include <cmath>
#include <iostream>
#include <vector>

#include "common.hpp"
#include "core/analyzer.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace {

eqos::net::ElasticQosSpec audio_qos() {
  eqos::net::ElasticQosSpec q;
  q.bmin_kbps = 64.0;
  q.bmax_kbps = 192.0;
  q.increment_kbps = 64.0;  // 3 states
  return q;
}

struct Row {
  std::size_t video_count = 0;
  std::size_t audio_count = 0;
  double video_sim = 0.0;
  double video_markov = 0.0;
  double audio_sim = 0.0;
  double audio_markov = 0.0;
};

Row run(std::size_t n, std::uint64_t seed, bool smoke) {
  using namespace eqos;
  net::Network network(bench::random_network(), net::NetworkConfig{});
  sim::WorkloadConfig w;
  w.qos = bench::paper_qos();
  w.qos_mix = {{bench::paper_qos(), 1.0}, {audio_qos(), 1.0}};
  w.seed = seed;
  sim::Simulator sim(network, w);
  sim.populate(n);
  const bool tiny = smoke || bench::fast_mode();
  sim.run_events(smoke ? 30 : (tiny ? 100 : 300));

  const auto is_video = [](const net::DrConnection& c) {
    return c.qos.bmax_kbps == 500.0;
  };
  const auto is_audio = [](const net::DrConnection& c) {
    return c.qos.bmax_kbps == 192.0;
  };
  sim::TransitionRecorder video_rec(bench::paper_qos(), sim.now(), is_video);
  sim::TransitionRecorder audio_rec(audio_qos(), sim.now(), is_audio);
  const std::size_t half = (smoke ? 60 : (tiny ? 400 : 1200)) / 2;
  sim.attach_recorder(&video_rec);
  sim.run_events(half);
  sim.attach_recorder(&audio_rec);
  sim.run_events(half);
  sim.attach_recorder(nullptr);

  Row row;
  for (net::ConnectionId id : network.active_ids())
    (is_video(network.connection(id)) ? row.video_count : row.audio_count) += 1;

  const auto video_est = video_rec.estimates(sim.now(), network);
  sim::WorkloadConfig video_w = w;
  video_w.qos = bench::paper_qos();
  const auto video_an = core::analyze(video_est, video_w);
  const auto audio_est = audio_rec.estimates(sim.now(), network);
  sim::WorkloadConfig audio_w = w;
  audio_w.qos = audio_qos();
  const auto audio_an = core::analyze(audio_est, audio_w);
  row.video_sim = video_est.mean_bandwidth_kbps;
  row.video_markov = video_an.average_bandwidth_kbps;
  row.audio_sim = audio_est.mean_bandwidth_kbps;
  row.audio_markov = audio_an.average_bandwidth_kbps;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace eqos;
  const bench::BenchCli cli = bench::parse_cli(argc, argv);
  std::cout << "== Extension: mixed video/audio traffic, per-class chains ==\n";
  bench::print_graph_header("Random (Waxman)", bench::random_network());
  std::cout << "# video [100,500]/50 and audio [64,192]/64, 50/50 mix; "
               "lambda = mu = 1e-3 total\n";

  std::vector<std::size_t> loads{1000, 3000, 5000, 7000};
  if (bench::fast_mode()) loads = {2000, 5000};
  if (cli.smoke) loads = {500};

  core::SweepReport report;
  const auto rows = bench::run_point_grid(
      cli, "bench_multiclass", loads.size(), report, [&](std::size_t point, std::size_t rep) {
        return run(loads[point],
                   core::sweep_seed(bench::kWorkloadSeed, point, rep), cli.smoke);
      });

  util::Table table({"tried", "class", "established", "sim Kb/s", "markov Kb/s"});
  const auto mean = [&](std::size_t point, auto field) {
    return bench::rep_mean(rows, point, cli.reps,
                           [&](const Row& r) { return r.*field; });
  };
  for (std::size_t i = 0; i < loads.size(); ++i) {
    table.add_row({std::to_string(loads[i]), "video",
                   std::to_string(static_cast<std::size_t>(
                       std::llround(mean(i, &Row::video_count)))),
                   util::Table::num(mean(i, &Row::video_sim)),
                   util::Table::num(mean(i, &Row::video_markov))});
    table.add_row({"", "audio",
                   std::to_string(static_cast<std::size_t>(
                       std::llround(mean(i, &Row::audio_count)))),
                   util::Table::num(mean(i, &Row::audio_sim)),
                   util::Table::num(mean(i, &Row::audio_markov))});
  }
  table.print(std::cout);
  std::cout << "# expectation: each class's chain tracks its own simulation "
               "mean; audio (smaller range) degrades later than video\n";
  return bench::finish_sweep(cli, "bench_multiclass", report);
}
