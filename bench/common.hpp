// Shared configuration for the bench harnesses.
//
// Every bench regenerates one table or figure of the paper on the same
// canonical instances: the "Random" network (Waxman, 100 nodes, ~354 edges,
// alpha = 0.33) and the "Tier" network (transit-stub, 100 nodes), with
// 10 Mb/s links, QoS range 100-500 Kb/s, and lambda = mu = 1e-3.
//
// Set EQOS_FAST=1 to shrink the sweeps for quick iteration; the full runs
// are what EXPERIMENTS.md records.
#pragma once

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/experiment.hpp"
#include "topology/metrics.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/table.hpp"

namespace eqos::bench {

inline constexpr std::uint64_t kTopologySeed = 7;
inline constexpr std::uint64_t kWorkloadSeed = 4242;

inline bool fast_mode() {
  const char* env = std::getenv("EQOS_FAST");
  return env != nullptr && std::string(env) != "0";
}

/// The paper's QoS spec; increment selects the 9-state (50) or 5-state (100)
/// chain.
inline net::ElasticQosSpec paper_qos(double increment_kbps = 50.0) {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = increment_kbps;
  q.utility = 1.0;
  return q;
}

/// Canonical experiment configuration (Figure 2 defaults).
inline core::ExperimentConfig paper_experiment(std::size_t connections,
                                               double increment_kbps = 50.0) {
  core::ExperimentConfig cfg;
  cfg.workload.qos = paper_qos(increment_kbps);
  cfg.workload.arrival_rate = 1e-3;
  cfg.workload.termination_rate = 1e-3;
  cfg.workload.failure_rate = 0.0;
  cfg.workload.seed = kWorkloadSeed;
  cfg.target_connections = connections;
  cfg.warmup_events = fast_mode() ? 100 : 300;
  cfg.measure_events = fast_mode() ? 400 : 1500;
  return cfg;
}

/// The paper's "Random" network.
inline const topology::Graph& random_network() {
  static const topology::Graph g =
      topology::generate_waxman({100, 0.33, 0.20, true}, kTopologySeed);
  return g;
}

/// The paper's "Tier" network.
inline const topology::Graph& tier_network() {
  static const topology::TransitStubGraph ts =
      topology::generate_transit_stub({}, kTopologySeed);
  return ts.graph;
}

inline void print_graph_header(const char* name, const topology::Graph& g) {
  const auto s = topology::graph_stats(g);
  std::cout << "# " << name << ": " << s.nodes << " nodes, " << s.links
            << " links, avg degree " << util::Table::num(s.average_degree, 2)
            << ", diameter " << s.diameter << ", avg path "
            << util::Table::num(s.average_path_length, 2) << "\n";
}

inline void print_workload_header(const core::ExperimentConfig& cfg) {
  std::cout << "# link BW 10 Mb/s; QoS [" << cfg.workload.qos.bmin_kbps << ", "
            << cfg.workload.qos.bmax_kbps << "] Kb/s, increment "
            << cfg.workload.qos.increment_kbps << " (N = "
            << cfg.workload.qos.num_states() << " states); lambda = mu = "
            << cfg.workload.arrival_rate << ", gamma = " << cfg.workload.failure_rate
            << "; seed " << cfg.workload.seed << (fast_mode() ? "; FAST mode" : "")
            << "\n";
}

}  // namespace eqos::bench
