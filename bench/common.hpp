// Shared configuration for the bench harnesses.
//
// Every bench regenerates one table or figure of the paper on the same
// canonical instances: the "Random" network (Waxman, 100 nodes, ~354 edges,
// alpha = 0.33) and the "Tier" network (transit-stub, 100 nodes), with
// 10 Mb/s links, QoS range 100-500 Kb/s, and lambda = mu = 1e-3.
//
// Set EQOS_FAST=1 to shrink the sweeps for quick iteration; the full runs
// are what EXPERIMENTS.md records.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "topology/metrics.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/table.hpp"

namespace eqos::bench {

inline constexpr std::uint64_t kTopologySeed = 7;
inline constexpr std::uint64_t kWorkloadSeed = 4242;

inline bool fast_mode() {
  const char* env = std::getenv("EQOS_FAST");
  return env != nullptr && std::string(env) != "0";
}

/// Shared command line of every bench driver.
///
///   --threads N   sweep worker threads (default 1 = historical serial
///                 behavior; 0 = hardware concurrency; env EQOS_THREADS
///                 supplies the default)
///   --reps N      independent replications per sweep point, averaged in the
///                 printed tables (default 1 = historical output)
///   --smoke       one tiny point per bench (the ctest `bench-smoke` label)
///   --json PATH   write the sweep throughput report as JSON
///   --metrics     enable the obs::MetricsRegistry; the aggregate snapshot is
///                 printed after the tables and embedded in the --json report
///   --trace       enable the obs trace flight recorder (audit failures dump
///                 the last-N events as JSON; see EQOS_TRACE_DUMP)
///   --trace-json PATH  also dump the recorded trace to PATH at exit
///                 (implies --trace)
///
/// Results are bit-identical for every --threads value (see core/sweep.hpp);
/// --reps changes the printed numbers only because more seeds are averaged.
struct BenchCli {
  std::size_t threads = 1;
  std::size_t reps = 1;
  bool smoke = false;
  std::string json;
  bool metrics = false;
  bool trace = false;
  std::string trace_json;

  [[nodiscard]] core::SweepOptions sweep_options() const {
    core::SweepOptions o;
    o.threads = threads;
    o.reps = reps;
    return o;
  }
};

/// Parses the shared flags; exits on --help or malformed input.
inline BenchCli parse_cli(int argc, char** argv) {
  BenchCli cli;
  if (const char* env = std::getenv("EQOS_THREADS"))
    cli.threads = static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
  auto need_value = [&](int i) -> const char* {
    if (i + 1 >= argc) {
      std::cerr << argv[0] << ": missing value after " << argv[i] << "\n";
      std::exit(2);
    }
    return argv[i + 1];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--threads") {
      cli.threads = static_cast<std::size_t>(std::strtoull(need_value(i), nullptr, 10));
      ++i;
    } else if (arg == "--reps") {
      cli.reps = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::strtoull(need_value(i), nullptr, 10)));
      ++i;
    } else if (arg == "--smoke") {
      cli.smoke = true;
    } else if (arg == "--json") {
      cli.json = need_value(i);
      ++i;
    } else if (arg == "--metrics") {
      cli.metrics = true;
      obs::set_metrics_enabled(true);
    } else if (arg == "--trace") {
      cli.trace = true;
      obs::set_trace_enabled(true);
    } else if (arg == "--trace-json") {
      cli.trace_json = need_value(i);
      cli.trace = true;
      obs::set_trace_enabled(true);
      obs::set_trace_dump_path(cli.trace_json);
      ++i;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: " << argv[0]
                << " [--threads N] [--reps N] [--smoke] [--json PATH]"
                   " [--metrics] [--trace] [--trace-json PATH]\n"
                   "  --threads N  sweep workers (1 = serial, 0 = hardware)\n"
                   "  --reps N     replications per point (averaged)\n"
                   "  --smoke      single tiny point (CI smoke test)\n"
                   "  --json PATH  write sweep throughput report as JSON\n"
                   "  --metrics    enable the metrics registry (snapshot printed\n"
                   "               and embedded in the --json report)\n"
                   "  --trace      enable the trace flight recorder (audit\n"
                   "               failures dump the last-N events as JSON)\n"
                   "  --trace-json PATH  dump the recorded trace to PATH at exit\n";
      std::exit(0);
    } else {
      std::cerr << argv[0] << ": unknown flag " << arg << " (see --help)\n";
      std::exit(2);
    }
  }
  return cli;
}

/// Runs `fn(point, rep)` for every (point, rep) of an n-point grid across
/// the CLI's worker threads and fills `report` with the throughput
/// measurement.  The generic path for benches whose per-point protocol is
/// not run_experiment.  Results land at [point * reps + rep]; determinism
/// follows from each fn call owning its state and seeding reps with
/// core::sweep_seed (rep 0 keeps the base seed — the historical output).
template <typename Fn>
auto run_point_grid(const BenchCli& cli, std::size_t n, core::SweepReport& report,
                    Fn&& fn) {
  const std::size_t total = n * cli.reps;
  // Per-(point,rep) metric deltas are well-defined only when points run one
  // at a time (the registry is process-global) — mirror run_sweep's rule.
  const bool capture_points = obs::metrics_enabled() && cli.threads <= 1;
  const auto start = std::chrono::steady_clock::now();
  auto results = core::parallel_points(total, cli.threads, [&](std::size_t i) {
    if (!capture_points) return fn(i / cli.reps, i % cli.reps);
    const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
    auto r = fn(i / cli.reps, i % cli.reps);
    report.point_metrics.emplace_back(
        "point" + std::to_string(i / cli.reps) + ".rep" + std::to_string(i % cli.reps),
        obs::snapshot_delta(before, obs::MetricsRegistry::global().snapshot()));
    return r;
  });
  if (obs::metrics_enabled()) {
    report.has_metrics = true;
    report.metrics = obs::MetricsRegistry::global().snapshot();
  }
  report.points = n;
  report.reps = cli.reps;
  report.threads =
      cli.threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                       : cli.threads;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.points_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(total) / report.wall_seconds
          : 0.0;
  return results;
}

/// Mean of `fn(rep_result)` over one point's replications in a
/// run_point_grid result vector.
template <typename R, typename Fn>
double rep_mean(const std::vector<R>& results, std::size_t point, std::size_t reps,
                Fn&& fn) {
  double sum = 0.0;
  for (std::size_t r = 0; r < reps; ++r)
    sum += static_cast<double>(fn(results[point * reps + r]));
  return sum / static_cast<double>(reps);
}

/// Emits the sweep throughput line and the optional JSON report.  The line
/// is suppressed for a default invocation (serial, 1 rep, no JSON) so the
/// historical bench output stays byte-identical.
inline void finish_sweep(const BenchCli& cli, const char* bench,
                         const core::SweepReport& report) {
  if (cli.threads != 1 || cli.reps != 1 || cli.smoke || !cli.json.empty())
    std::cout << "# sweep: " << report.points << " points x " << report.reps
              << " reps on " << report.threads << " thread(s), "
              << util::Table::num(report.wall_seconds, 3) << " s wall ("
              << util::Table::num(report.points_per_second, 2) << " points/s)\n";
  if (cli.metrics) {
    const obs::MetricsSnapshot snap =
        report.has_metrics ? report.metrics : obs::MetricsRegistry::global().snapshot();
    std::cout << "# metrics\n" << snap.to_json(0) << "\n";
  }
  if (!cli.json.empty()) {
    if (!core::write_sweep_json(cli.json, bench, report))
      std::cerr << bench << ": cannot write " << cli.json << "\n";
  }
  if (!cli.trace_json.empty()) {
    if (obs::dump_trace("end of run").empty())
      std::cerr << bench << ": cannot write " << cli.trace_json << "\n";
  }
}

/// The paper's QoS spec; increment selects the 9-state (50) or 5-state (100)
/// chain.
inline net::ElasticQosSpec paper_qos(double increment_kbps = 50.0) {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = increment_kbps;
  q.utility = 1.0;
  return q;
}

/// Canonical experiment configuration (Figure 2 defaults).
inline core::ExperimentConfig paper_experiment(std::size_t connections,
                                               double increment_kbps = 50.0) {
  core::ExperimentConfig cfg;
  cfg.workload.qos = paper_qos(increment_kbps);
  cfg.workload.arrival_rate = 1e-3;
  cfg.workload.termination_rate = 1e-3;
  cfg.workload.failure_rate = 0.0;
  cfg.workload.seed = kWorkloadSeed;
  cfg.target_connections = connections;
  cfg.warmup_events = fast_mode() ? 100 : 300;
  cfg.measure_events = fast_mode() ? 400 : 1500;
  return cfg;
}

/// Shrinks an experiment configuration to smoke size (a few dozen events);
/// used by every bench under --smoke so the ctest `bench-smoke` label runs
/// in seconds.
inline core::ExperimentConfig smoke_config(core::ExperimentConfig cfg) {
  cfg.target_connections = std::min<std::size_t>(cfg.target_connections, 200);
  cfg.warmup_events = 20;
  cfg.measure_events = 60;
  return cfg;
}

/// The paper's "Random" network.
inline const topology::Graph& random_network() {
  static const topology::Graph g =
      topology::generate_waxman({100, 0.33, 0.20, true}, kTopologySeed);
  return g;
}

/// The paper's "Tier" network.
inline const topology::Graph& tier_network() {
  static const topology::TransitStubGraph ts =
      topology::generate_transit_stub({}, kTopologySeed);
  return ts.graph;
}

inline void print_graph_header(const char* name, const topology::Graph& g) {
  const auto s = topology::graph_stats(g);
  std::cout << "# " << name << ": " << s.nodes << " nodes, " << s.links
            << " links, avg degree " << util::Table::num(s.average_degree, 2)
            << ", diameter " << s.diameter << ", avg path "
            << util::Table::num(s.average_path_length, 2) << "\n";
}

inline void print_workload_header(const core::ExperimentConfig& cfg) {
  std::cout << "# link BW 10 Mb/s; QoS [" << cfg.workload.qos.bmin_kbps << ", "
            << cfg.workload.qos.bmax_kbps << "] Kb/s, increment "
            << cfg.workload.qos.increment_kbps << " (N = "
            << cfg.workload.qos.num_states() << " states); lambda = mu = "
            << cfg.workload.arrival_rate << ", gamma = " << cfg.workload.failure_rate
            << "; seed " << cfg.workload.seed << (fast_mode() ? "; FAST mode" : "")
            << "\n";
}

}  // namespace eqos::bench
