// Shared configuration for the bench harnesses.
//
// Every bench regenerates one table or figure of the paper on the same
// canonical instances: the "Random" network (Waxman, 100 nodes, ~354 edges,
// alpha = 0.33) and the "Tier" network (transit-stub, 100 nodes), with
// 10 Mb/s links, QoS range 100-500 Kb/s, and lambda = mu = 1e-3.
//
// Set EQOS_FAST=1 to shrink the sweeps for quick iteration; the full runs
// are what EXPERIMENTS.md records.
#pragma once

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>

#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "state/serial.hpp"
#include "topology/metrics.hpp"
#include "topology/transit_stub.hpp"
#include "topology/waxman.hpp"
#include "util/table.hpp"

namespace eqos::bench {

inline constexpr std::uint64_t kTopologySeed = 7;
inline constexpr std::uint64_t kWorkloadSeed = 4242;

inline bool fast_mode() {
  const char* env = std::getenv("EQOS_FAST");
  return env != nullptr && std::string(env) != "0";
}

/// Shared command line of every bench driver.
///
///   --threads N   sweep worker threads (default 1 = historical serial
///                 behavior; 0 = hardware concurrency; env EQOS_THREADS
///                 supplies the default)
///   --reps N      independent replications per sweep point, averaged in the
///                 printed tables (default 1 = historical output)
///   --smoke       one tiny point per bench (the ctest `bench-smoke` label)
///   --json PATH   write the sweep throughput report as JSON
///   --metrics     enable the obs::MetricsRegistry; the aggregate snapshot is
///                 printed after the tables and embedded in the --json report
///   --trace       enable the obs trace flight recorder (audit failures dump
///                 the last-N events as JSON; see EQOS_TRACE_DUMP)
///   --trace-json PATH  also dump the recorded trace to PATH at exit
///                 (implies --trace)
///
/// Results are bit-identical for every --threads value (see core/sweep.hpp);
/// --reps changes the printed numbers only because more seeds are averaged.
struct BenchCli {
  std::size_t threads = 1;
  std::size_t reps = 1;
  /// Event-engine shards per simulation (>= 1).  Results are bit-identical
  /// at every value — the same invariance discipline as --threads.
  std::size_t shards = 1;
  bool smoke = false;
  std::string json;
  bool metrics = false;
  bool trace = false;
  std::string trace_json;

  // Crash tolerance (see core::SweepCheckpoint).
  std::string checkpoint_dir;
  std::size_t checkpoint_every = 1;
  bool resume = false;
  std::size_t retries = 2;
  double backoff_seconds = 0.0;
  double watchdog_seconds = 0.0;

  [[nodiscard]] core::SweepCheckpoint checkpoint_options() const {
    core::SweepCheckpoint c;
    c.dir = checkpoint_dir;
    c.every = checkpoint_every;
    c.resume = resume;
    c.max_retries = retries;
    c.retry_backoff_seconds = backoff_seconds;
    c.watchdog_seconds = watchdog_seconds;
    return c;
  }

  [[nodiscard]] core::SweepOptions sweep_options() const {
    core::SweepOptions o;
    o.threads = threads;
    o.reps = reps;
    o.checkpoint = checkpoint_options();
    return o;
  }
};

/// Strict numeric parse: the whole string must be a base-10 non-negative
/// integer ("abc", "", "12x", and "-3" all fail).
inline bool parse_size_arg(const std::string& text, std::size_t& out) {
  if (text.empty()) return false;
  std::size_t v = 0;
  const char* begin = text.data();
  const char* end = begin + text.size();
  const auto [p, ec] = std::from_chars(begin, end, v, 10);
  if (ec != std::errc() || p != end) return false;
  out = v;
  return true;
}

/// Strict double parse; rejects trailing junk, negatives, and non-finites.
inline bool parse_seconds_arg(const std::string& text, double& out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || !(v >= 0.0) || v > 1e12) return false;
  out = v;
  return true;
}

inline void cli_usage(const char* prog, std::ostream& out) {
  out << "usage: " << prog
      << " [--threads N] [--shards N] [--reps N] [--smoke] [--json PATH]"
         " [--metrics] [--trace] [--trace-json PATH]"
         " [--checkpoint-dir DIR] [--checkpoint-every N] [--resume]"
         " [--retries N] [--backoff SEC] [--watchdog SEC]\n"
         "  --threads N  sweep workers (1 = serial, 0 = hardware)\n"
         "  --shards N   event-engine shards per simulation (>= 1;\n"
         "               results are bit-identical at every value)\n"
         "  --reps N     replications per point (averaged), N >= 1\n"
         "  --smoke      single tiny point (CI smoke test)\n"
         "  --json PATH  write sweep throughput report as JSON\n"
         "  --metrics    enable the metrics registry (snapshot printed\n"
         "               and embedded in the --json report)\n"
         "  --trace      enable the trace flight recorder (audit\n"
         "               failures dump the last-N events as JSON)\n"
         "  --trace-json PATH  dump the recorded trace to PATH at exit\n"
         "  --checkpoint-dir DIR   persist each completed sweep cell to DIR\n"
         "  --checkpoint-every N   rewrite the manifest every N cells (default 1)\n"
         "  --resume     skip cells already completed in --checkpoint-dir;\n"
         "               corrupt cells are quarantined (*.corrupt) and redone\n"
         "  --retries N  re-attempts for a cell that throws (default 2)\n"
         "  --backoff SEC   sleep attempt*SEC between retries (default 0)\n"
         "  --watchdog SEC  flag cells running longer than SEC (default off)\n"
         "All flags also accept --flag=value.\n";
}

[[noreturn]] inline void cli_fail(const char* prog, const std::string& message) {
  std::cerr << prog << ": " << message << "\n";
  cli_usage(prog, std::cerr);
  std::exit(2);
}

/// Parses the shared flags.  Exits 0 on --help; exits 2 with a usage message
/// on an unknown flag, a missing value, or a malformed value (--threads=abc,
/// --reps -3, ...).
inline BenchCli parse_cli(int argc, char** argv) {
  BenchCli cli;
  if (const char* env = std::getenv("EQOS_THREADS")) {
    if (!parse_size_arg(env, cli.threads))
      cli_fail(argv[0], std::string("EQOS_THREADS is not a non-negative integer: ") + env);
  }
  for (int i = 1; i < argc; ++i) {
    std::string name = argv[i];
    std::optional<std::string> inline_value;
    if (name.size() > 2 && name.rfind("--", 0) == 0) {
      const std::size_t eq = name.find('=');
      if (eq != std::string::npos) {
        inline_value = name.substr(eq + 1);
        name.resize(eq);
      }
    }
    const auto value = [&]() -> std::string {
      if (inline_value) return *inline_value;
      if (i + 1 >= argc) cli_fail(argv[0], "missing value after " + name);
      return argv[++i];
    };
    const auto size_value = [&](std::size_t minimum) -> std::size_t {
      const std::string text = value();
      std::size_t v = 0;
      if (!parse_size_arg(text, v) || v < minimum)
        cli_fail(argv[0], name + " expects an integer >= " + std::to_string(minimum) +
                              ", got '" + text + "'");
      return v;
    };
    const auto seconds_value = [&]() -> double {
      const std::string text = value();
      double v = 0.0;
      if (!parse_seconds_arg(text, v))
        cli_fail(argv[0], name + " expects a non-negative number of seconds, got '" +
                              text + "'");
      return v;
    };
    const auto no_value = [&] {
      if (inline_value) cli_fail(argv[0], name + " does not take a value");
    };
    if (name == "--threads") {
      cli.threads = size_value(0);
    } else if (name == "--shards") {
      cli.shards = size_value(1);
    } else if (name == "--reps") {
      cli.reps = size_value(1);
    } else if (name == "--smoke") {
      no_value();
      cli.smoke = true;
    } else if (name == "--json") {
      cli.json = value();
    } else if (name == "--metrics") {
      no_value();
      cli.metrics = true;
      obs::set_metrics_enabled(true);
    } else if (name == "--trace") {
      no_value();
      cli.trace = true;
      obs::set_trace_enabled(true);
    } else if (name == "--trace-json") {
      cli.trace_json = value();
      cli.trace = true;
      obs::set_trace_enabled(true);
      obs::set_trace_dump_path(cli.trace_json);
    } else if (name == "--checkpoint-dir") {
      cli.checkpoint_dir = value();
      if (cli.checkpoint_dir.empty())
        cli_fail(argv[0], "--checkpoint-dir expects a directory path");
    } else if (name == "--checkpoint-every") {
      cli.checkpoint_every = size_value(1);
    } else if (name == "--resume") {
      no_value();
      cli.resume = true;
    } else if (name == "--retries") {
      cli.retries = size_value(0);
    } else if (name == "--backoff") {
      cli.backoff_seconds = seconds_value();
    } else if (name == "--watchdog") {
      cli.watchdog_seconds = seconds_value();
    } else if (name == "--help" || name == "-h") {
      cli_usage(argv[0], std::cout);
      std::exit(0);
    } else {
      cli_fail(argv[0], "unknown flag " + name);
    }
  }
  if (cli.resume && cli.checkpoint_dir.empty())
    cli_fail(argv[0], "--resume requires --checkpoint-dir");
  return cli;
}

/// Runs `fn(point, rep)` for every (point, rep) of an n-point grid across
/// the CLI's worker threads and fills `report` with the throughput
/// measurement.  The generic path for benches whose per-point protocol is
/// not run_experiment.  Results land at [point * reps + rep]; determinism
/// follows from each fn call owning its state and seeding reps with
/// core::sweep_seed (rep 0 keeps the base seed — the historical output).
///
/// Cells run under a core::CellHarness: a throwing cell is retried and then
/// recorded in report.failures (its row stays default-constructed), and with
/// --checkpoint-dir completed cells persist for --resume.  Persistence needs
/// a byte-copyable row: non-trivially-copyable row types silently run with
/// retry/watchdog only.  `bench` keys the checkpoint fingerprint.
template <typename Fn>
auto run_point_grid(const BenchCli& cli, const char* bench, std::size_t n,
                    core::SweepReport& report, Fn&& fn) {
  using Row = std::decay_t<decltype(fn(std::size_t{0}, std::size_t{0}))>;
  const std::size_t total = n * cli.reps;
  // Per-(point,rep) metric deltas are well-defined only when points run one
  // at a time (the registry is process-global) — mirror run_sweep's rule.
  const bool capture_points = obs::metrics_enabled() && cli.threads <= 1;
  std::vector<Row> results(total);

  core::SweepCheckpoint ckpt = cli.checkpoint_options();
  if constexpr (!std::is_trivially_copyable_v<Row>) ckpt.dir.clear();
  core::CellHarness harness(ckpt, state::kKindGridRow,
                            core::grid_fingerprint(bench, n, cli.reps, sizeof(Row)),
                            n, cli.reps);
  if (ckpt.resume)
    harness.resume([&](std::size_t point, std::size_t rep, state::Buffer& payload) {
      if constexpr (std::is_trivially_copyable_v<Row>) {
        if (payload.remaining() != sizeof(Row))
          throw state::CorruptError("grid cell payload size mismatch");
        payload.get_bytes(&results[point * cli.reps + rep], sizeof(Row));
      }
    });

  const auto start = std::chrono::steady_clock::now();
  const auto run_slot = [&](std::size_t i) {
    harness.run_cell(
        i,
        [&] {
          if (!capture_points) {
            results[i] = fn(i / cli.reps, i % cli.reps);
            return;
          }
          const obs::MetricsSnapshot before = obs::MetricsRegistry::global().snapshot();
          results[i] = fn(i / cli.reps, i % cli.reps);
          report.point_metrics.emplace_back(
              "point" + std::to_string(i / cli.reps) + ".rep" + std::to_string(i % cli.reps),
              obs::snapshot_delta(before, obs::MetricsRegistry::global().snapshot()));
        },
        [&](state::Buffer& payload) {
          if constexpr (std::is_trivially_copyable_v<Row>)
            payload.put_bytes(&results[i], sizeof(Row));
        });
  };
  if (cli.threads <= 1 || total <= 1) {
    for (std::size_t i = 0; i < total; ++i) run_slot(i);
  } else {
    util::ThreadPool pool(cli.threads);
    pool.parallel_for(total, run_slot);
  }
  harness.finish(report);

  if (obs::metrics_enabled()) {
    report.has_metrics = true;
    report.metrics = obs::MetricsRegistry::global().snapshot();
  }
  report.points = n;
  report.reps = cli.reps;
  report.threads =
      cli.threads == 0 ? std::max(1u, std::thread::hardware_concurrency())
                       : cli.threads;
  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  report.points_per_second =
      report.wall_seconds > 0.0
          ? static_cast<double>(total) / report.wall_seconds
          : 0.0;
  return results;
}

/// Mean of `fn(rep_result)` over one point's replications in a
/// run_point_grid result vector.
template <typename R, typename Fn>
double rep_mean(const std::vector<R>& results, std::size_t point, std::size_t reps,
                Fn&& fn) {
  double sum = 0.0;
  for (std::size_t r = 0; r < reps; ++r)
    sum += static_cast<double>(fn(results[point * reps + r]));
  return sum / static_cast<double>(reps);
}

/// Emits the sweep throughput line and the optional JSON report, and
/// returns the bench's exit code: 0 on a clean sweep, 1 when any cell
/// failed every attempt (the failures are listed on stderr and embedded in
/// the JSON report), so scripted runs cannot mistake a partial sweep for a
/// complete one.  The throughput line is suppressed for a default
/// invocation (serial, 1 rep, no JSON) so the historical bench output stays
/// byte-identical; under EQOS_FIXED_TIMING its wall-clock numbers print as
/// zeros (resume-vs-straight-through byte comparisons).  Resume accounting
/// goes to stderr only — stdout must not differ between a resumed run and a
/// straight-through one.
inline int finish_sweep(const BenchCli& cli, const char* bench,
                        const core::SweepReport& report) {
  if (cli.threads != 1 || cli.reps != 1 || cli.smoke || !cli.json.empty()) {
    const bool fixed = core::fixed_timing();
    std::cout << "# sweep: " << report.points << " points x " << report.reps
              << " reps on " << report.threads << " thread(s), "
              << util::Table::num(fixed ? 0.0 : report.wall_seconds, 3) << " s wall ("
              << util::Table::num(fixed ? 0.0 : report.points_per_second, 2)
              << " points/s)\n";
  }
  if (report.cells_loaded != 0 || report.cells_quarantined != 0 ||
      report.cells_retried != 0 || report.watchdog_flagged != 0)
    std::cerr << "# checkpoint: " << report.cells_loaded << " cell(s) resumed, "
              << report.cells_quarantined << " quarantined, " << report.cells_retried
              << " retried, " << report.watchdog_flagged << " watchdog-flagged\n";
  if (cli.metrics) {
    const obs::MetricsSnapshot snap =
        report.has_metrics ? report.metrics : obs::MetricsRegistry::global().snapshot();
    std::cout << "# metrics\n" << snap.to_json(0) << "\n";
  }
  if (!cli.json.empty()) {
    if (!core::write_sweep_json(cli.json, bench, report))
      std::cerr << bench << ": cannot write " << cli.json << "\n";
  }
  if (!cli.trace_json.empty()) {
    if (obs::dump_trace("end of run").empty())
      std::cerr << bench << ": cannot write " << cli.trace_json << "\n";
  }
  for (const core::SweepCellFailure& f : report.failures)
    std::cerr << bench << ": point " << f.point << " rep " << f.rep
              << " failed after " << f.attempts << " attempt(s): " << f.error << "\n";
  return report.failures.empty() ? 0 : 1;
}

/// The paper's QoS spec; increment selects the 9-state (50) or 5-state (100)
/// chain.
inline net::ElasticQosSpec paper_qos(double increment_kbps = 50.0) {
  net::ElasticQosSpec q;
  q.bmin_kbps = 100.0;
  q.bmax_kbps = 500.0;
  q.increment_kbps = increment_kbps;
  q.utility = 1.0;
  return q;
}

/// Canonical experiment configuration (Figure 2 defaults).
inline core::ExperimentConfig paper_experiment(std::size_t connections,
                                               double increment_kbps = 50.0) {
  core::ExperimentConfig cfg;
  cfg.workload.qos = paper_qos(increment_kbps);
  cfg.workload.arrival_rate = 1e-3;
  cfg.workload.termination_rate = 1e-3;
  cfg.workload.failure_rate = 0.0;
  cfg.workload.seed = kWorkloadSeed;
  cfg.target_connections = connections;
  cfg.warmup_events = fast_mode() ? 100 : 300;
  cfg.measure_events = fast_mode() ? 400 : 1500;
  return cfg;
}

/// Shrinks an experiment configuration to smoke size (a few dozen events);
/// used by every bench under --smoke so the ctest `bench-smoke` label runs
/// in seconds.
inline core::ExperimentConfig smoke_config(core::ExperimentConfig cfg) {
  cfg.target_connections = std::min<std::size_t>(cfg.target_connections, 200);
  cfg.warmup_events = 20;
  cfg.measure_events = 60;
  return cfg;
}

/// The paper's "Random" network.
inline const topology::Graph& random_network() {
  static const topology::Graph g =
      topology::generate_waxman({100, 0.33, 0.20, true}, kTopologySeed);
  return g;
}

/// The paper's "Tier" network.
inline const topology::Graph& tier_network() {
  static const topology::TransitStubGraph ts =
      topology::generate_transit_stub({}, kTopologySeed);
  return ts.graph;
}

inline void print_graph_header(const char* name, const topology::Graph& g) {
  const auto s = topology::graph_stats(g);
  std::cout << "# " << name << ": " << s.nodes << " nodes, " << s.links
            << " links, avg degree " << util::Table::num(s.average_degree, 2)
            << ", diameter " << s.diameter << ", avg path "
            << util::Table::num(s.average_path_length, 2) << "\n";
}

inline void print_workload_header(const core::ExperimentConfig& cfg) {
  std::cout << "# link BW 10 Mb/s; QoS [" << cfg.workload.qos.bmin_kbps << ", "
            << cfg.workload.qos.bmax_kbps << "] Kb/s, increment "
            << cfg.workload.qos.increment_kbps << " (N = "
            << cfg.workload.qos.num_states() << " states); lambda = mu = "
            << cfg.workload.arrival_rate << ", gamma = " << cfg.workload.failure_rate
            << "; seed " << cfg.workload.seed << (fast_mode() ? "; FAST mode" : "")
            << "\n";
}

}  // namespace eqos::bench
